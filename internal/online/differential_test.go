package online

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/geom"
	"specmatch/internal/market"
	"specmatch/internal/xrand"
)

// sessionPair is the differential harness: the same market driven through
// the incremental engine and through a shadow full-recompute session
// (DisableIncremental), with bit-for-bit equality demanded after every
// event. StepStats carries welfare floats and the Snapshot carries the
// recomputed welfare, so equality here means the incremental path replays
// the full path's float arithmetic exactly — not just the same matching.
type sessionPair struct {
	inc  *Session // default path: persistent core.Incremental engine
	full *Session // shadow: effective-market rebuild + core.Repair per step
}

func newSessionPair(t testing.TB, sellers, buyers int, seed int64) (*sessionPair, *market.Market) {
	t.Helper()
	m, err := market.Generate(market.Config{Sellers: sellers, Buyers: buyers, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewSession(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewSession(m, core.Options{DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	return &sessionPair{inc: inc, full: full}, m
}

// step drives one event through both sessions and asserts prefix
// equivalence: identical error outcome, bit-identical StepStats, equal
// matchings, and bit-identical snapshots (assignment, active sets, exact
// welfare float).
func (p *sessionPair) step(t testing.TB, label string, ev Event) {
	t.Helper()
	stInc, errInc := p.inc.Step(ev)
	stFull, errFull := p.full.Step(ev)
	if (errInc != nil) != (errFull != nil) {
		t.Fatalf("%s: error divergence: incremental %v, full %v", label, errInc, errFull)
	}
	if errInc != nil {
		return // both rejected; Step guarantees no mutation on failure
	}
	if stInc != stFull {
		t.Fatalf("%s: StepStats divergence:\n incremental %+v\n full        %+v", label, stInc, stFull)
	}
	p.compare(t, label)
}

// compare asserts the two sessions describe bit-identical states.
func (p *sessionPair) compare(t testing.TB, label string) {
	t.Helper()
	if !p.inc.Matching().Equal(p.full.Matching()) {
		t.Fatalf("%s: matchings diverged:\n incremental %v\n full        %v",
			label, p.inc.Matching(), p.full.Matching())
	}
	snapInc, snapFull := p.inc.Snapshot(), p.full.Snapshot()
	if !reflect.DeepEqual(snapInc, snapFull) {
		t.Fatalf("%s: snapshots diverged:\n incremental %+v\n full        %+v", label, snapInc, snapFull)
	}
}

// TestIncrementalDifferentialEquivalence is the tentpole's correctness pin:
// across randomized mixed churn traces (arrivals, departures, channel
// reclaims and re-offers, duplicates) on several market shapes, every
// incremental step must be bit-for-bit equivalent to the shadow full
// recompute — StepStats, matching, and snapshot welfare all exactly equal
// at every prefix.
func TestIncrementalDifferentialEquivalence(t *testing.T) {
	steps := 60
	if testing.Short() {
		steps = 20
	}
	for _, tc := range []struct {
		sellers, buyers int
		seed            int64
	}{
		{3, 12, 41},
		{5, 28, 42},
		{8, 64, 43}, // buyer count crosses the 64-bit bitset word boundary
		{2, 6, 44},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d_seed%d", tc.sellers, tc.buyers, tc.seed), func(t *testing.T) {
			t.Parallel()
			p, m := newSessionPair(t, tc.sellers, tc.buyers, tc.seed)
			r := xrand.New(tc.seed * 7)
			for step := 0; step < steps; step++ {
				ev := randomChurn(p.inc, m, r)
				p.step(t, fmt.Sprintf("step %d (%+v)", step, ev), ev)
			}
		})
	}
}

// TestIncrementalRebuildAdoptEquivalence extends the rebuild-monotonicity
// coverage to the persistent engine: adopting rebuilds interleave with
// incremental steps, swapping the session's matching out from under the
// incremental engine. The engine must keep replaying the full path exactly
// from whatever matching the rebuild left behind, and the rebuild itself
// must stay welfare-monotone on the incremental session.
func TestIncrementalRebuildAdoptEquivalence(t *testing.T) {
	for _, seed := range []int64{51, 52, 53} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			p, m := newSessionPair(t, 5, 24, seed)
			r := xrand.New(seed * 13)
			for step := 0; step < 40; step++ {
				p.step(t, fmt.Sprintf("step %d", step), randomChurn(p.inc, m, r))
				if step%10 != 9 {
					continue
				}
				before := p.inc.Welfare()
				gotInc, err := p.inc.Rebuild(true)
				if err != nil {
					t.Fatalf("step %d: incremental-session rebuild: %v", step, err)
				}
				gotFull, err := p.full.Rebuild(true)
				if err != nil {
					t.Fatalf("step %d: full-session rebuild: %v", step, err)
				}
				if gotInc != gotFull {
					t.Fatalf("step %d: rebuild welfare diverged: incremental %v, full %v", step, gotInc, gotFull)
				}
				if gotInc < before-1e-9 {
					t.Fatalf("step %d: adopting rebuild lowered welfare %v -> %v", step, before, gotInc)
				}
				p.compare(t, fmt.Sprintf("after rebuild at step %d", step))
				checkServiceInvariants(t, p.inc)
			}
		})
	}
}

// FuzzIncrementalStep feeds byte-program-driven event traces — every Event
// type, duplicate indices, and out-of-range indices that must fail Validate
// — through the differential pair, asserting bit-for-bit equality at every
// prefix. Wired into the CI fuzz-smoke matrix.
func FuzzIncrementalStep(f *testing.F) {
	f.Add(int64(1), []byte{0, 0, 0, 1, 0, 2, 0, 3})             // arrivals
	f.Add(int64(2), []byte{0, 0, 0, 1, 1, 0, 0, 0})             // arrive, depart, re-arrive
	f.Add(int64(3), []byte{0, 0, 0, 1, 3, 0, 2, 0})             // channel down displaces, back up
	f.Add(int64(4), []byte{4, 0, 4, 7, 4, 13, 4, 20})           // mixed batches
	f.Add(int64(5), []byte{0, 0, 5, 0, 0, 1, 5, 9})             // invalid events interleaved
	f.Add(int64(6), []byte{4, 3, 3, 1, 4, 5, 2, 1, 4, 9, 1, 2}) // churn-heavy mix
	f.Add(int64(7), []byte{0, 0, 6, 0, 6, 61, 6, 122, 1, 0})    // arrive, hop around, depart
	f.Add(int64(8), []byte{6, 5, 7, 2, 6, 5, 7, 3, 4, 1})       // moves interleaved with invalid moves
	f.Fuzz(func(t *testing.T, seed int64, program []byte) {
		p, m := newSessionPair(t, 4, 20, seed)
		n, mm := m.N(), m.M()
		ops := len(program) / 2
		if ops > 100 {
			ops = 100
		}
		for k := 0; k < ops; k++ {
			op, arg := int(program[2*k])%8, int(program[2*k+1])
			var ev Event
			switch op {
			case 0:
				ev.Arrive = []int{arg % n}
			case 1:
				ev.Depart = []int{arg % n}
			case 2:
				ev.ChannelUp = []int{arg % mm}
			case 3:
				ev.ChannelDown = []int{arg % mm}
			case 4:
				// Mixed batch with duplicate and overlapping indices: the
				// same buyer departing and arriving in one event, repeated
				// entries, and simultaneous channel churn.
				j := arg % n
				ev.Arrive = []int{j, (j + 1) % n, j}
				ev.Depart = []int{j, (j + 2) % n}
				ev.ChannelDown = []int{arg % mm}
				ev.ChannelUp = []int{(arg + 1) % mm}
			case 5:
				// Out of range: Validate must reject on both paths and leave
				// both sessions untouched.
				ev.Arrive = []int{n + arg}
			case 6:
				// Move to a deterministic waypoint on an 11x11 lattice over
				// the deployment area — coarse enough that fuzzed traces
				// revisit points, exercising same-point moves and row
				// restoration alongside genuine rewires.
				ev.Move = []BuyerMove{{Buyer: arg % n,
					To: geom.Point{X: float64(arg % 11), Y: float64((arg / 11) % 11)}}}
			case 7:
				// Invalid move: out-of-range buyer or non-finite coordinate,
				// rejected identically on both paths with no mutation.
				if arg%2 == 0 {
					ev.Move = []BuyerMove{{Buyer: n + arg, To: geom.Point{X: 1, Y: 1}}}
				} else {
					ev.Move = []BuyerMove{{Buyer: arg % n, To: geom.Point{X: math.NaN(), Y: 0}}}
				}
			}
			p.step(t, fmt.Sprintf("op %d (%+v)", k, ev), ev)
		}
	})
}
