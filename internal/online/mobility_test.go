package online

import (
	"fmt"
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/geom"
	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/xrand"
)

// arriveAll brings every buyer online in one step.
func arriveAll(t *testing.T, s *Session) {
	t.Helper()
	var ev Event
	for j := 0; j < s.Market().N(); j++ {
		ev.Arrive = append(ev.Arrive, j)
	}
	if _, err := s.Step(ev); err != nil {
		t.Fatal(err)
	}
}

// TestMoveSamePointNoOp: a position report that repeats the buyer's current
// coordinates is metamorphically a no-op — it counts as a move (Moved is a
// pure function of the event) but changes no interference row, displaces
// nobody, and leaves matching, welfare, and the whole snapshot untouched
// except the step counter.
func TestMoveSamePointNoOp(t *testing.T) {
	for _, seed := range []int64{101, 102, 103} {
		s, m := newSession(t, 4, 18, seed)
		arriveAll(t, s)
		before := s.Snapshot()
		for j := 0; j < m.N(); j++ {
			p, ok := s.Market().BuyerPos(j)
			if !ok {
				t.Fatalf("seed %d: buyer %d has no position", seed, j)
			}
			st, err := s.Step(Event{Move: []BuyerMove{{Buyer: j, To: p}}})
			if err != nil {
				t.Fatalf("seed %d buyer %d: %v", seed, j, err)
			}
			if st.Moved != 1 || st.Displaced != 0 {
				t.Fatalf("seed %d buyer %d: Moved=%d Displaced=%d, want 1, 0", seed, j, st.Moved, st.Displaced)
			}
			if st.Welfare != before.Welfare {
				t.Fatalf("seed %d buyer %d: welfare drifted %v -> %v on a same-point move",
					seed, j, before.Welfare, st.Welfare)
			}
		}
		after := s.Snapshot()
		before.Steps = after.Steps
		if !reflect.DeepEqual(before, after) {
			t.Fatalf("seed %d: same-point moves changed the snapshot\nbefore %+v\nafter  %+v", seed, before, after)
		}
	}
}

// TestMoveUnmatchedBuyer: moving a buyer that is inactive (or active but
// unmatched) rewires its interference rows without touching the matching —
// and when the buyer later arrives, it is matched against the rows its last
// move left behind, identically on both engine paths.
func TestMoveUnmatchedBuyer(t *testing.T) {
	p, m := newSessionPair(t, 4, 18, 111)
	r := xrand.New(111)
	// Everyone except buyer 0 arrives; buyer 0 wanders while parked.
	var ev Event
	for j := 1; j < m.N(); j++ {
		ev.Arrive = append(ev.Arrive, j)
	}
	p.step(t, "arrive all but 0", ev)
	for k := 0; k < 10; k++ {
		mv := Event{Move: []BuyerMove{{Buyer: 0, To: geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}}}}
		muBefore := p.inc.Matching().Clone()
		st, err := p.inc.Step(mv)
		if err != nil {
			t.Fatalf("hop %d: %v", k, err)
		}
		if _, err := p.full.Step(mv); err != nil {
			t.Fatalf("hop %d (full): %v", k, err)
		}
		if st.Displaced != 0 {
			t.Fatalf("hop %d: moving an unmatched buyer displaced %d buyers", k, st.Displaced)
		}
		if !p.inc.Matching().Equal(muBefore) {
			t.Fatalf("hop %d: moving an unmatched buyer changed the matching", k)
		}
		p.compare(t, fmt.Sprintf("hop %d", k))
	}
	p.step(t, "late arrival after wandering", Event{Arrive: []int{0}})
	checkServiceInvariants(t, p.inc)
}

// TestMoveOutAndBackRestoresSessionRows: at the session level, moving an
// active buyer far away and straight back restores every channel's
// interference rows in the live market the engine matches against.
func TestMoveOutAndBackRestoresSessionRows(t *testing.T) {
	s, m := newSession(t, 4, 18, 121)
	arriveAll(t, s)
	for j := 0; j < m.N(); j++ {
		home, _ := s.Market().BuyerPos(j)
		before := make([][]int, s.Market().M())
		for i := range before {
			before[i] = s.Market().Graph(i).Neighbors(j)
		}
		if _, err := s.Step(Event{Move: []BuyerMove{{Buyer: j, To: geom.Point{X: 99, Y: 99}}}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Step(Event{Move: []BuyerMove{{Buyer: j, To: home}}}); err != nil {
			t.Fatal(err)
		}
		for i := range before {
			if got := s.Market().Graph(i).Neighbors(j); !reflect.DeepEqual(got, before[i]) {
				t.Fatalf("buyer %d channel %d: rows not restored: %v, want %v", j, i, got, before[i])
			}
		}
		checkServiceInvariants(t, s)
	}
}

// TestMoveRequiresGeometry: a session over an abstract market (no positions,
// no ranges) rejects move events up front and stays untouched; the same
// event with the move stripped is accepted.
func TestMoveRequiresGeometry(t *testing.T) {
	m, err := market.New(
		[][]float64{{3, 2, 1}, {1, 2, 3}},
		[]*graph.Graph{graph.New(3), graph.Complete(3)},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Event{Arrive: []int{0, 1}, Move: []BuyerMove{{Buyer: 2, To: geom.Point{X: 1, Y: 1}}}}
	if _, err := s.Step(ev); err == nil {
		t.Fatal("geometry-less session accepted a move event")
	}
	if s.Steps() != 0 || s.ActiveCount() != 0 {
		t.Fatal("rejected move event mutated the session")
	}
	if _, err := s.Step(Event{Arrive: []int{0, 1}}); err != nil {
		t.Fatalf("move-free event on the same session: %v", err)
	}
}

// TestSessionMarketIsolated: NewSession clones the base market, so mobility
// inside one session never leaks into the caller's market or into a sibling
// session built from the same instance — the invariant the differential
// harness itself depends on.
func TestSessionMarketIsolated(t *testing.T) {
	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: 131})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSession(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	origEdges := m.Graph(0).Edges()
	bEdges := b.Market().Graph(0).Edges()
	if _, err := a.Step(Event{Move: []BuyerMove{{Buyer: 0, To: geom.Point{X: 42, Y: 42}}}}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Graph(0).Edges(), origEdges) {
		t.Error("session move mutated the caller's market")
	}
	if !reflect.DeepEqual(b.Market().Graph(0).Edges(), bEdges) {
		t.Error("session move leaked into a sibling session")
	}
}
