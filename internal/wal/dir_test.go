package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openClean opens a dir and fails the test on error.
func openClean(t *testing.T, path string) (*Dir, *Recovered) {
	t.Helper()
	d, rec, err := Open(path, time.Millisecond, false, nil)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return d, rec
}

// appendSync appends records lsn..lsn+n-1 and waits for durability.
func appendSync(t *testing.T, d *Dir, lsn uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		l := lsn + uint64(i)
		d.Append(Record{Type: TypeStep, LSN: l, Body: []byte(fmt.Sprintf("step-%d", l))}, func(err error) {
			if err != nil {
				t.Errorf("append lsn %d: %v", l, err)
			}
		})
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestDirCheckpointAppendRecover(t *testing.T) {
	path := t.TempDir()
	d, rec := openClean(t, path)
	if rec.SnapshotBody != nil || len(rec.Records) != 0 || rec.MaxLSN != 0 {
		t.Fatalf("fresh dir recovered non-empty state: %+v", rec)
	}
	if err := d.Checkpoint(0, []byte("state-0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 5)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, rec2 := openClean(t, path)
	defer d2.Close()
	if string(rec2.SnapshotBody) != "state-0" || rec2.SnapshotLSN != 0 {
		t.Fatalf("recovered snapshot %q@%d", rec2.SnapshotBody, rec2.SnapshotLSN)
	}
	if len(rec2.Records) != 5 || rec2.MaxLSN != 5 {
		t.Fatalf("recovered %d records, max lsn %d; want 5, 5", len(rec2.Records), rec2.MaxLSN)
	}
	for i, r := range rec2.Records {
		if r.LSN != uint64(i+1) || string(r.Body) != fmt.Sprintf("step-%d", i+1) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	if rec2.TornRecords != 0 || rec2.RepairedRecords != 0 {
		t.Fatalf("clean dir reported damage: %+v", rec2)
	}
}

// A checkpoint truncates: superseded generations disappear and recovery
// replays only records past the checkpoint LSN.
func TestDirCheckpointRotation(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	if err := d.Checkpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 8)
	if err := d.Checkpoint(8, []byte("s8")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 9, 3)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(path)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("after rotation want exactly snap+log, got %v", names)
	}

	_, rec := openClean(t, path)
	if string(rec.SnapshotBody) != "s8" || rec.SnapshotLSN != 8 {
		t.Fatalf("recovered snapshot %q@%d, want s8@8", rec.SnapshotBody, rec.SnapshotLSN)
	}
	if len(rec.Records) != 3 || rec.Records[0].LSN != 9 || rec.MaxLSN != 11 {
		t.Fatalf("recovered %d records (first lsn %d, max %d); want 3 from 9 to 11",
			len(rec.Records), rec.Records[0].LSN, rec.MaxLSN)
	}
}

// A torn tail on the live log (the crash signature) is dropped silently and
// counted; the intact prefix survives.
func TestDirTornTailTruncated(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	if err := d.Checkpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 4)
	logPath := filepath.Join(path, logName(d.Gen()))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: half a frame at the tail.
	frame := AppendRecord(nil, Record{Type: TypeStep, LSN: 5, Body: []byte("never-acked")})
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, rec := openClean(t, path) // torn tails never need repair
	if len(rec.Records) != 4 || rec.TornRecords == 0 {
		t.Fatalf("recovered %d records, torn %d; want 4 records and a torn count", len(rec.Records), rec.TornRecords)
	}
	if rec.MaxLSN != 4 {
		t.Fatalf("MaxLSN %d includes the torn record", rec.MaxLSN)
	}
}

// Mid-log corruption refuses recovery unless repair, which keeps the intact
// prefix and counts the damage.
func TestDirMidLogCorruption(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	if err := d.Checkpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 6)
	logPath := filepath.Join(path, logName(d.Gen()))
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the second record's body: intact frames follow, so this cannot
	// be a torn write.
	off := len(Magic) + EncodedSize(len("step-1")) + EncodedSize(len("step-2")) - 2
	data[off] ^= 0xff
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(path, time.Millisecond, false, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open without repair: err = %v, want ErrCorrupt", err)
	}
	_, rec, err := Open(path, time.Millisecond, true, nil)
	if err != nil {
		t.Fatalf("Open with repair: %v", err)
	}
	if len(rec.Records) != 1 || rec.Records[0].LSN != 1 {
		t.Fatalf("repair kept %d records, want the intact prefix of 1", len(rec.Records))
	}
	if rec.RepairedRecords == 0 {
		t.Fatal("repair did not count the dropped records")
	}
}

// An unreadable newest checkpoint is fatal without repair; with repair an
// older readable checkpoint takes over.
func TestDirCorruptCheckpoint(t *testing.T) {
	path := t.TempDir()
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSnap := func(gen uint64, lsn uint64, body string) {
		buf := append([]byte{}, Magic[:]...)
		buf = AppendRecord(buf, Record{Type: TypeSnapshot, LSN: lsn, Body: []byte(body)})
		if err := os.WriteFile(filepath.Join(path, snapName(gen)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSnap(1, 10, "old-but-good")
	writeSnap(2, 20, "new-and-bad")
	// Flip a body byte of the newest snapshot — complete file, bad CRC, and
	// since the snapshot frame is the file's final frame that reads as a torn
	// checkpoint, which is still unreadable and still fatal without repair.
	snap2 := filepath.Join(path, snapName(2))
	data, err := os.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snap2, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(path, time.Millisecond, false, nil); err == nil {
		t.Fatal("Open accepted an unreadable newest checkpoint without repair")
	}
	_, rec, err := Open(path, time.Millisecond, true, nil)
	if err != nil {
		t.Fatalf("Open with repair: %v", err)
	}
	if string(rec.SnapshotBody) != "old-but-good" || rec.SnapshotLSN != 10 {
		t.Fatalf("repair recovered %q@%d, want the older checkpoint", rec.SnapshotBody, rec.SnapshotLSN)
	}
	if rec.RepairedSnapshots != 1 {
		t.Fatalf("RepairedSnapshots = %d, want 1", rec.RepairedSnapshots)
	}
}

// A crash between snapshot rename and old-file deletion leaves both
// generations on disk; recovery must not double-apply covered records.
func TestDirRotationCrashWindow(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	if err := d.Checkpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 5)
	oldLog := filepath.Join(path, logName(d.Gen()))
	data, err := os.ReadFile(oldLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(5, []byte("s5")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 6, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the superseded log and drop in a stale tmp file, as if the
	// rotation's cleanup never ran.
	if err := os.WriteFile(oldLog, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(path, snapName(99)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, rec := openClean(t, path)
	if string(rec.SnapshotBody) != "s5" || rec.SnapshotLSN != 5 {
		t.Fatalf("recovered %q@%d, want s5@5", rec.SnapshotBody, rec.SnapshotLSN)
	}
	if len(rec.Records) != 2 || rec.Records[0].LSN != 6 || rec.Records[1].LSN != 7 {
		t.Fatalf("recovered records %+v, want exactly lsn 6 and 7 (covered lsns skipped)", rec.Records)
	}
	// The next checkpoint clears the leftovers.
	if err := d2.Checkpoint(7, []byte("s7")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(path)
	for _, e := range ents {
		if e.Name() != snapName(d2.Gen()) && e.Name() != logName(d2.Gen()) {
			t.Fatalf("leftover %s survived the next checkpoint", e.Name())
		}
	}
}

// A rotation that renames the new snapshot but never creates the new log
// (ENOSPC, crash between the two) leaves the shard appending acknowledged
// records into the OLD generation's log. Recovery must read logs the
// checkpoint appears to supersede and keep every record past the snapshot
// LSN — skipping whole logs by generation number would drop acked data.
func TestDirFailedRotationKeepsAckedRecords(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	if err := d.Checkpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 5)
	gen := d.Gen()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the partial rotation: snap-(gen+1) covering through lsn 3
	// appears, but wal-(gen+1) does not; lsns 4 and 5 — acknowledged after
	// the failed rotation — exist only in the old generation's log.
	buf := append([]byte{}, Magic[:]...)
	buf = AppendRecord(buf, Record{Type: TypeSnapshot, LSN: 3, Body: []byte("s3")})
	if err := os.WriteFile(filepath.Join(path, snapName(gen+1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, rec := openClean(t, path) // acked data at stake: must not need repair
	if string(rec.SnapshotBody) != "s3" || rec.SnapshotLSN != 3 {
		t.Fatalf("recovered snapshot %q@%d, want s3@3", rec.SnapshotBody, rec.SnapshotLSN)
	}
	if len(rec.Records) != 2 || rec.Records[0].LSN != 4 || rec.Records[1].LSN != 5 {
		t.Fatalf("recovered records %+v, want exactly lsn 4 and 5 from the superseded log", rec.Records)
	}
	if rec.MaxLSN != 5 || rec.TornRecords != 0 || rec.RepairedRecords != 0 {
		t.Fatalf("recovery stats off: %+v", rec)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}

	// Same layout with a torn tail on the old log: it was still the shard's
	// active log when the crash hit, so the torn frame is the ordinary
	// crash signature — truncated silently, no repair required.
	frame := AppendRecord(nil, Record{Type: TypeStep, LSN: 6, Body: []byte("never-acked")})
	f, err := os.OpenFile(filepath.Join(path, logName(gen)), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d3, rec3 := openClean(t, path)
	defer d3.Close()
	if len(rec3.Records) != 2 || rec3.TornRecords == 0 {
		t.Fatalf("recovered %d records, torn %d; want 2 records and a torn count", len(rec3.Records), rec3.TornRecords)
	}
}

// A torn frame in a log with appended-to later generations cannot be a
// crash artifact — the shard had already moved on — and must be treated as
// corruption: fatal without repair.
func TestDirTornSupersededLogIsCorruption(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	if err := d.Checkpoint(0, []byte("s0")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 1, 4)
	oldLog := filepath.Join(path, logName(d.Gen()))
	oldData, err := os.ReadFile(oldLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(4, []byte("s4")); err != nil {
		t.Fatal(err)
	}
	appendSync(t, d, 5, 2)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Resurrect the superseded log with a half frame at its tail: the next
	// generation holds records, so this cannot be the active log's torn tail.
	frame := AppendRecord(nil, Record{Type: TypeStep, LSN: 99, Body: []byte("damage")})
	oldData = append(oldData, frame[:len(frame)/2]...)
	if err := os.WriteFile(oldLog, oldData, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(path, time.Millisecond, false, nil); err == nil {
		t.Fatal("Open accepted a torn superseded log without repair")
	}
	_, rec, err := Open(path, time.Millisecond, true, nil)
	if err != nil {
		t.Fatalf("Open with repair: %v", err)
	}
	if len(rec.Records) != 2 || rec.Records[0].LSN != 5 {
		t.Fatalf("repair recovered %+v, want lsn 5 and 6", rec.Records)
	}
	if rec.RepairedRecords == 0 {
		t.Fatal("repair did not count the damage")
	}
}

func TestDirAppendBeforeCheckpoint(t *testing.T) {
	d, _ := openClean(t, t.TempDir())
	defer d.Close()
	var got error
	d.Append(Record{Type: TypeStep, LSN: 1}, func(err error) { got = err })
	if got == nil {
		t.Fatal("append before first checkpoint succeeded")
	}
}

// Snapshot bodies survive the write/read cycle byte for byte, including
// non-JSON content — the framing is payload-agnostic.
func TestSnapshotFileRoundTrip(t *testing.T) {
	path := t.TempDir()
	d, _ := openClean(t, path)
	body := bytes.Repeat([]byte{0x00, 0xff, 0x7f}, 4096)
	if err := d.Checkpoint(42, body); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec := openClean(t, path)
	if !bytes.Equal(rec.SnapshotBody, body) || rec.SnapshotLSN != 42 {
		t.Fatalf("snapshot round trip lost data: %d bytes @%d", len(rec.SnapshotBody), rec.SnapshotLSN)
	}
}
