package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// This file is the read side of replication: NewestSnapshot answers the
// truncation-horizon question ("which LSNs are only available as a
// checkpoint?"), Tail follows a live shard directory's log across
// checkpoint rotations, and ReadMagic/ReadRecord decode the identical
// framing from a byte stream (the replication wire format IS the file
// format, so a follower can append what it reads verbatim).

// ReadMagic consumes and verifies the 8-byte file magic from r — the first
// bytes of a WAL file or of a replication stream.
func ReadMagic(r io.Reader) error {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return err
	}
	if m != Magic {
		return ErrBadMagic
	}
	return nil
}

// ReadRecord reads one framed record from r, blocking until it is fully
// available. io.EOF between frames is a clean end of stream;
// io.ErrUnexpectedEOF mid-frame is a torn stream.
func ReadRecord(r io.Reader) (Record, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, err
	}
	plen := int(binary.LittleEndian.Uint32(hdr[0:4]))
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if plen < metaSize || plen > MaxRecordLen {
		return Record{}, fmt.Errorf("%w: bad length %d", ErrCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return Record{}, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	typ := Type(payload[0])
	if typ < TypeCreate || typ > TypeFork {
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, typ)
	}
	return Record{
		Type: typ,
		LSN:  binary.LittleEndian.Uint64(payload[1:9]),
		Body: payload[metaSize:],
	}, nil
}

// NewestSnapshot returns the newest readable checkpoint of a shard
// directory: its body and LSN, with ok=false when the directory holds no
// readable checkpoint. This is the truncation horizon — log records with
// LSN ≤ the returned LSN may no longer exist as log frames.
func NewestSnapshot(path string) (body []byte, lsn uint64, ok bool, err error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, 0, false, err
	}
	var gens []uint64
	for _, e := range entries {
		if g, okk := parseGen(e.Name(), "snap-", ".ckpt"); okk {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		b, l, rerr := readSnapshotFile(filepath.Join(path, snapName(g)))
		if rerr != nil {
			// A torn or half-rotated newer snapshot is skippable for
			// streaming: an older complete one (or the logs) still covers
			// everything acknowledged.
			continue
		}
		return b, l, true, nil
	}
	return nil, 0, false, nil
}

// Tail follows a live shard directory's log files, in LSN order, across
// checkpoint rotations, without coordinating with the writer: it reads
// bytes that are already on disk and treats an incomplete final frame as
// "not yet" rather than "torn". The writer's rotation protocol makes the
// generation switch observable: a superseded log is fully synced before the
// rotation completes, and its path is unlinked only after the next
// generation is durable — so Tail switches generations exactly when the
// file it is reading has disappeared from the directory and it has consumed
// the file to a clean end.
//
// Tail is not safe for concurrent use.
type Tail struct {
	dir       string
	cursor    uint64 // emit only records with LSN > cursor
	gen       uint64 // generation currently open; 0 = none yet
	f         *os.File
	off       int64
	buf       []byte
	magicDone bool
}

// OpenTail prepares to read a shard directory's log records with LSN >
// fromLSN. No I/O happens until Next.
func OpenTail(dir string, fromLSN uint64) *Tail {
	return &Tail{dir: dir, cursor: fromLSN}
}

// Cursor returns the highest LSN returned so far (or the starting point).
func (t *Tail) Cursor() uint64 { return t.cursor }

// Close releases the open file, if any.
func (t *Tail) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// Next returns every record now readable past the cursor, or nil when the
// tail is (currently) caught up — the caller polls. A nil, nil return is
// never an error; real damage (mid-log corruption) is.
func (t *Tail) Next() ([]Record, error) {
	var out []Record
	for {
		if t.f == nil {
			ok, err := t.open()
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil // nothing to read yet
			}
		}
		if err := t.drain(&out); err != nil {
			return out, err
		}
		// Clean end of the readable bytes. If the file is still in the
		// directory we are caught up; if it is gone it was superseded by a
		// completed rotation. A superseded log is final at unlink time but
		// our read may predate its last flush, so drain once more through
		// the still-open fd before moving to the next generation.
		if _, serr := os.Stat(filepath.Join(t.dir, logName(t.gen))); serr == nil {
			return out, nil
		} else if !os.IsNotExist(serr) {
			return out, serr
		}
		if err := t.drain(&out); err != nil {
			return out, err
		}
		if len(t.buf) > 0 {
			// Unlinked with a torn tail: superseded logs are synced before
			// rotation, so this cannot be a crash artifact.
			return out, fmt.Errorf("%w: %d trailing bytes in rotated-away %s", ErrCorrupt, len(t.buf), logName(t.gen))
		}
		_ = t.Close()
	}
}

// drain reads all currently complete frames and appends the new ones to out.
func (t *Tail) drain(out *[]Record) error {
	recs, err := t.read()
	for _, r := range recs {
		if r.LSN > t.cursor {
			t.cursor = r.LSN
			*out = append(*out, r)
		}
	}
	return err
}

// open finds and opens the next log file to read: the smallest generation >
// the one last consumed (or the smallest present, initially). Returns
// ok=false when no such log exists yet.
func (t *Tail) open() (bool, error) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return false, err
	}
	best, found := uint64(0), false
	for _, e := range entries {
		g, ok := parseGen(e.Name(), "wal-", ".log")
		if !ok || g <= t.gen {
			continue
		}
		if !found || g < best {
			best, found = g, true
		}
	}
	if !found {
		return false, nil
	}
	f, err := os.Open(filepath.Join(t.dir, logName(best)))
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil // raced a rotation's cleanup; retry next poll
		}
		return false, err
	}
	t.f, t.gen, t.off, t.buf, t.magicDone = f, best, 0, nil, false
	return true, nil
}

// read consumes whatever complete frames are currently on disk past t.off.
// An incomplete tail is buffered and retried on the next call.
func (t *Tail) read() ([]Record, error) {
	st, err := t.f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() <= t.off {
		return nil, nil
	}
	chunk := make([]byte, st.Size()-t.off)
	if _, err := io.ReadFull(io.NewSectionReader(t.f, t.off, int64(len(chunk))), chunk); err != nil {
		return nil, err
	}
	t.off += int64(len(chunk))
	data := append(t.buf, chunk...)
	if !t.magicDone {
		// First bytes of this file: strip and verify the magic. A file
		// shorter than the magic is a creation still in flight.
		if len(data) < len(Magic) {
			t.buf = data
			return nil, nil
		}
		if [8]byte(data[:8]) != Magic {
			return nil, fmt.Errorf("%s: %w", logName(t.gen), ErrBadMagic)
		}
		data = data[8:]
		t.magicDone = true
	}
	recs, n, serr := Scan(data)
	t.buf = data[n:]
	if serr != nil && !errors.Is(serr, ErrTornTail) {
		return recs, fmt.Errorf("%s: %w", logName(t.gen), serr)
	}
	return recs, nil
}
