// Package wal is the durability layer under specserved's session store: an
// append-only, CRC32C-framed log of applied session mutations plus periodic
// full-state checkpoints, one directory per store shard so the shard's
// goroutine-owned queue stays lock-free (the only cross-goroutine structure
// is the fsync batcher, which the shard never waits on).
//
// The package is deliberately dumb about payloads — bodies are opaque bytes
// (the server layer stores JSON) — so the framing, batching, rotation, and
// recovery logic can be tested and fuzzed without dragging in the engine.
//
// On-disk layout of a shard directory:
//
//	snap-<gen>.ckpt   one framed TypeSnapshot record: full state at an LSN
//	wal-<gen>.log     framed mutation records with LSN > the snapshot's
//
// Both file kinds start with an 8-byte magic ("SPECWAL1"), then framed
// records:
//
//	u32le payload length | u32le CRC32C(payload) | payload
//	payload = u8 record type | u64le LSN | body bytes
//
// A checkpoint at generation g+1 covers every record with LSN ≤ its LSN, so
// recovery is: load the newest readable snapshot, then replay every log
// record with a higher LSN, in generation order. Crash windows during
// rotation (snapshot renamed but old files not yet deleted) are harmless —
// replay skips already-covered LSNs. A torn tail (a frame that runs past
// EOF, or a CRC failure on the final frame) is truncated: those bytes were
// never acknowledged durable. A CRC or framing failure with intact frames
// after it is mid-log corruption and recovery refuses it unless explicitly
// asked to repair, because silently dropping an interior record would
// diverge every session replayed past it.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Type tags a record's payload. The zero value is invalid so that an
// all-zero frame never decodes as a record.
type Type uint8

const (
	// TypeCreate records a new session: body = {id, market spec}.
	TypeCreate Type = 1
	// TypeStep records one applied churn event: body = {id, event}.
	TypeStep Type = 2
	// TypeRebuild records an adopted-capable rebuild: body = {id}. Replaying
	// it re-runs the deterministic engine, reproducing the adoption choice.
	TypeRebuild Type = 3
	// TypeDelete records a session removal: body = {id}.
	TypeDelete Type = 4
	// TypeSnapshot is the single record of a checkpoint file: body = full
	// shard state at the record's LSN.
	TypeSnapshot Type = 5
	// TypeFork records a session born as a point-in-time fork: body = the
	// child's id plus the full spec and state it started from. It carries
	// state (not a parent reference) because the child lands on its own
	// shard, where the parent's shard-local LSNs mean nothing.
	TypeFork Type = 6
)

func (t Type) String() string {
	switch t {
	case TypeCreate:
		return "create"
	case TypeStep:
		return "step"
	case TypeRebuild:
		return "rebuild"
	case TypeDelete:
		return "delete"
	case TypeSnapshot:
		return "snapshot"
	case TypeFork:
		return "fork"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one framed log entry. LSN is the shard-local, strictly
// increasing sequence number that ties logs to checkpoints.
type Record struct {
	Type Type
	LSN  uint64
	Body []byte
}

// Magic opens every WAL and checkpoint file; the trailing byte versions the
// format.
var Magic = [8]byte{'S', 'P', 'E', 'C', 'W', 'A', 'L', 1}

const (
	headerSize = 8     // per-record: u32 length + u32 crc
	metaSize   = 1 + 8 // per-payload: type byte + u64 lsn
	// MaxRecordLen bounds a single payload; anything larger is treated as a
	// corrupt frame rather than an allocation request.
	MaxRecordLen = 64 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Framing and recovery errors.
var (
	// ErrTornTail reports an incomplete or CRC-failing final frame — the
	// expected signature of a crash mid-write. The intact prefix is valid.
	ErrTornTail = errors.New("wal: torn tail record")
	// ErrCorrupt reports a framing or CRC failure with intact data after it
	// — not a torn write, and not safely skippable.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrBadMagic reports a file that does not start with the WAL magic.
	ErrBadMagic = errors.New("wal: bad file magic")
	// ErrClosed reports an append to a closed or failed log.
	ErrClosed = errors.New("wal: log closed")
)

// AppendRecord appends r's framed encoding to buf and returns the extended
// slice.
func AppendRecord(buf []byte, r Record) []byte {
	n := metaSize + len(r.Body)
	var hdr [headerSize + metaSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(hdr[9:17], r.LSN)
	crc := crc32.Update(0, castagnoli, hdr[8:])
	crc = crc32.Update(crc, castagnoli, r.Body)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, r.Body...)
}

// EncodedSize returns the framed size of a record with the given body
// length.
func EncodedSize(bodyLen int) int { return headerSize + metaSize + bodyLen }

// Scan decodes consecutive framed records from data (which must not include
// the file magic). It returns the records decoded before any failure and
// the number of bytes consumed by them. err is nil on a clean end,
// ErrTornTail when the failure can only be a truncated final write, and
// ErrCorrupt when intact bytes follow the failure.
func Scan(data []byte) (recs []Record, n int, err error) {
	off := 0
	for off < len(data) {
		rest := len(data) - off
		if rest < headerSize {
			return recs, off, fmt.Errorf("%w: %d trailing bytes at offset %d", ErrTornTail, rest, off)
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen < metaSize || plen > MaxRecordLen {
			// The length field itself is garbage. If the frame claims to run
			// past EOF it is indistinguishable from a torn header; a bounded
			// bogus length mid-file is corruption.
			if plen < 0 || off+headerSize+plen >= len(data) {
				return recs, off, fmt.Errorf("%w: bad length %d at offset %d", ErrTornTail, plen, off)
			}
			return recs, off, fmt.Errorf("%w: bad length %d at offset %d", ErrCorrupt, plen, off)
		}
		if rest < headerSize+plen {
			return recs, off, fmt.Errorf("%w: frame of %d bytes exceeds %d remaining at offset %d",
				ErrTornTail, headerSize+plen, rest, off)
		}
		payload := data[off+headerSize : off+headerSize+plen]
		if crc32.Checksum(payload, castagnoli) != want {
			// A bad CRC on the very last frame is the torn-write signature; a
			// bad CRC with complete frames after it cannot be.
			if off+headerSize+plen == len(data) {
				return recs, off, fmt.Errorf("%w: crc mismatch on final record at offset %d", ErrTornTail, off)
			}
			return recs, off, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
		}
		typ := Type(payload[0])
		if typ < TypeCreate || typ > TypeFork {
			return recs, off, fmt.Errorf("%w: unknown record type %d at offset %d", ErrCorrupt, typ, off)
		}
		body := make([]byte, plen-metaSize)
		copy(body, payload[metaSize:])
		recs = append(recs, Record{
			Type: typ,
			LSN:  binary.LittleEndian.Uint64(payload[1:9]),
			Body: body,
		})
		off += headerSize + plen
	}
	return recs, off, nil
}

// ScanFile checks the magic and decodes every record of a WAL or checkpoint
// file's contents.
func ScanFile(data []byte) ([]Record, int, error) {
	if len(data) < len(Magic) {
		// A header shorter than the magic is a torn creation, not corruption.
		return nil, 0, fmt.Errorf("%w: %d-byte file", ErrTornTail, len(data))
	}
	if [8]byte(data[:8]) != Magic {
		return nil, 0, ErrBadMagic
	}
	recs, n, err := Scan(data[8:])
	return recs, n + 8, err
}

// SyncStats is the Log's per-fsync instrumentation callback: records and
// bytes made durable by the batch, and the wall time the write+fsync took.
// The server layer bridges it to the obs registry; wal stays
// dependency-free.
type SyncStats func(records, bytes int, took time.Duration)

// DurableFunc observes every batch the instant it becomes durable: batch is
// the exact framed bytes just written and fsynced (no magic prefix), lastLSN
// the highest LSN in it. It runs on the flushing goroutine after fsync
// succeeds and BEFORE the batch's durability callbacks fire — so anything it
// publishes (e.g. a replication stream) happens-before the client ack. It
// must not block indefinitely: the fsync path waits on it.
type DurableFunc func(batch []byte, lastLSN uint64)

// Log is an append-only record file with batched fsync. Append is called
// only by the owning shard goroutine; the durability callbacks fire from
// the log's syncer goroutine (or inline when FsyncInterval < 0). A Log
// never reorders: bytes reach the file in append order, and a callback
// fires only after every byte up to and including its record is fsynced.
type Log struct {
	path  string
	every time.Duration
	stats SyncStats

	// flushMu serializes whole flushes: the file write happens outside mu
	// (so appends never wait on disk), and without this two concurrent
	// flushes — e.g. Sync's close-race fallback against Close's own flush —
	// could write their batches out of order on the non-O_APPEND fd.
	flushMu sync.Mutex

	mu        sync.Mutex
	f         *os.File
	pending   []byte
	cbs       []func(error)
	nrecs     int
	lastLSN   uint64 // highest LSN appended (pending or flushed)
	onDurable DurableFunc
	failed    error // sticky first write/sync error
	closed    bool

	syncReq chan chan error
	done    chan struct{}
	wg      sync.WaitGroup
	size    int64
}

// Create creates (truncating) a log file, writes the magic, and starts the
// syncer. every < 0 makes every append write+fsync inline (strict mode);
// every == 0 defaults to 2ms.
func Create(path string, every time.Duration, stats SyncStats) (*Log, error) {
	if every == 0 {
		every = 2 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(Magic[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		path:    path,
		every:   every,
		stats:   stats,
		f:       f,
		syncReq: make(chan chan error),
		done:    make(chan struct{}),
		size:    int64(len(Magic)),
	}
	if every > 0 {
		l.wg.Add(1)
		go l.syncer()
	}
	return l, nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// SetOnDurable installs (or clears) the post-fsync batch observer. Safe to
// call while the log is live; it takes effect for the next flushed batch.
func (l *Log) SetOnDurable(fn DurableFunc) {
	l.mu.Lock()
	l.onDurable = fn
	l.mu.Unlock()
}

// Size returns the current durable-or-pending size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size + int64(len(l.pending))
}

// Append frames r into the pending batch; onDurable (optional) fires with
// nil once the record is fsynced, or with the write error. In strict mode
// (every < 0) the write+fsync happens before Append returns.
func (l *Log) Append(r Record, onDurable func(error)) {
	l.mu.Lock()
	if l.closed || l.failed != nil {
		err := l.failed
		if err == nil {
			err = ErrClosed
		}
		l.mu.Unlock()
		if onDurable != nil {
			onDurable(err)
		}
		return
	}
	l.pending = AppendRecord(l.pending, r)
	l.nrecs++
	if r.LSN > l.lastLSN {
		l.lastLSN = r.LSN
	}
	if onDurable != nil {
		l.cbs = append(l.cbs, onDurable)
	}
	strict := l.every < 0
	l.mu.Unlock()
	if strict {
		l.flush()
	}
}

// flush writes and fsyncs the pending batch and fires its callbacks.
// Callers may race (syncer tick, strict-mode append, Sync's close fallback,
// Close itself); flushMu serializes them so batches reach the file in the
// order they were taken from pending.
func (l *Log) flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	buf, cbs, nrecs := l.pending, l.cbs, l.nrecs
	batchLast, publish := l.lastLSN, l.onDurable
	l.pending, l.cbs, l.nrecs = nil, nil, 0
	if len(buf) == 0 {
		err := l.failed
		l.mu.Unlock()
		for _, cb := range cbs {
			cb(err)
		}
		return err
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		for _, cb := range cbs {
			cb(err)
		}
		return err
	}
	f := l.f
	l.mu.Unlock()

	start := time.Now()
	_, err := f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	took := time.Since(start)

	l.mu.Lock()
	if err != nil {
		l.failed = err
	} else {
		l.size += int64(len(buf))
	}
	l.mu.Unlock()

	if err == nil && publish != nil {
		// Publish the durable bytes before the acks below: a subscriber (the
		// replication stream) sees every record no later than its client does.
		publish(buf, batchLast)
	}
	if err == nil && l.stats != nil {
		l.stats(nrecs, len(buf), took)
	}
	for _, cb := range cbs {
		cb(err)
	}
	return err
}

func (l *Log) syncer() {
	defer l.wg.Done()
	t := time.NewTicker(l.every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.flush()
		case done := <-l.syncReq:
			done <- l.flush()
		case <-l.done:
			return
		}
	}
}

// Sync flushes the pending batch now and waits until it is durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		err := l.failed
		l.mu.Unlock()
		return err
	}
	strict := l.every < 0
	l.mu.Unlock()
	if strict {
		return l.flush()
	}
	done := make(chan error, 1)
	select {
	case l.syncReq <- done:
		return <-done
	case <-l.done:
		return l.flush()
	}
}

// Close flushes, fsyncs, stops the syncer, and closes the file. Idempotent;
// pending callbacks fire before Close returns.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	if l.every > 0 {
		close(l.done)
		l.wg.Wait()
	}
	err := l.flush()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
