package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Recovered is what Open found on disk: the newest readable checkpoint and
// every log record past it, in application order. The caller rebuilds its
// state from these, then MUST call Checkpoint before appending — that
// rotates to a fresh generation, which is also what persists the truncation
// of a torn tail.
type Recovered struct {
	// SnapshotBody is the newest readable checkpoint's body, nil when the
	// directory had no (readable) checkpoint.
	SnapshotBody []byte
	// SnapshotLSN is the LSN the checkpoint covers through.
	SnapshotLSN uint64
	// Records are the log records with LSN > SnapshotLSN, oldest first.
	Records []Record
	// MaxLSN is the highest LSN seen anywhere (snapshot or logs).
	MaxLSN uint64
	// TornRecords counts tail frames dropped as torn writes.
	TornRecords int
	// RepairedRecords counts frames dropped past a mid-log corruption in
	// repair mode (always 0 otherwise — without repair, corruption is an
	// Open error).
	RepairedRecords int
	// RepairedSnapshots counts unreadable checkpoint files skipped in
	// repair mode.
	RepairedSnapshots int
}

// Dir is one shard's durable state: the current-generation log plus the
// checkpoint files, rotated by Checkpoint. Append/Checkpoint are owned by
// the shard goroutine; Sync/Close may be called during shutdown.
type Dir struct {
	path      string
	every     time.Duration
	stats     SyncStats
	onDurable DurableFunc
	gen       uint64
	log       *Log
	closed    bool
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%016x.ckpt", gen) }
func logName(gen uint64) string  { return fmt.Sprintf("wal-%016x.log", gen) }

func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 16, 64)
	return g, err == nil
}

// Open recovers a shard directory (creating it if absent). every is the
// log's fsync batching interval (see Create); repair tolerates mid-log and
// mid-checkpoint corruption by dropping everything from the first corrupt
// frame on. After Open the Dir has no writable log yet: call Checkpoint
// with the rebuilt state first.
func Open(path string, every time.Duration, repair bool, stats SyncStats) (*Dir, *Recovered, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, nil, err
	}
	rec, snapGen, logGens, err := readState(path, repair)
	if err != nil {
		return nil, nil, err
	}
	d := &Dir{path: path, every: every, stats: stats, gen: maxU64(snapGen, lastU64(logGens))}
	return d, rec, nil
}

// ReadState recovers a shard directory's durable state without opening it
// for writing: the same newest-checkpoint-plus-log-replay scan Open runs,
// against whatever files are on disk right now. It is the read side of a
// point-in-time fork — the owning Dir may keep appending concurrently, since
// the scan only sees bytes already written (callers wanting the acknowledged
// tail should Sync first). Strict: any damage beyond a torn tail is an
// error.
func ReadState(path string) (*Recovered, error) {
	rec, _, _, err := readState(path, false)
	return rec, err
}

// readState scans a shard directory: newest readable checkpoint, then every
// log record past its LSN, in generation order. Shared by Open (which then
// owns the directory) and ReadState (which never writes).
func readState(path string, repair bool) (*Recovered, uint64, []uint64, error) {
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, 0, nil, err
	}
	var snapGens, logGens []uint64
	for _, e := range entries {
		if g, ok := parseGen(e.Name(), "snap-", ".ckpt"); ok {
			snapGens = append(snapGens, g)
		}
		if g, ok := parseGen(e.Name(), "wal-", ".log"); ok {
			logGens = append(logGens, g)
		}
		// Anything else (tmp files from a crashed rotation) is ignored and
		// cleaned up by the next Checkpoint.
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	sort.Slice(logGens, func(i, j int) bool { return logGens[i] < logGens[j] })

	rec := &Recovered{}
	snapGen := uint64(0)
	// Newest readable checkpoint wins; an unreadable one is fatal unless
	// repair, because it may cover records the older snapshot does not.
	for _, g := range snapGens {
		body, lsn, err := readSnapshotFile(filepath.Join(path, snapName(g)))
		if err != nil {
			if !repair {
				return nil, 0, nil, fmt.Errorf("wal: checkpoint %s: %w", snapName(g), err)
			}
			rec.RepairedSnapshots++
			continue
		}
		rec.SnapshotBody = body
		rec.SnapshotLSN = lsn
		rec.MaxLSN = lsn
		snapGen = g
		break
	}

	// Read EVERY log, even generations the checkpoint appears to supersede:
	// the per-record 'LSN <= SnapshotLSN' filter below already makes replay
	// idempotent, and a rotation that renamed the new snapshot but failed to
	// create the new log leaves acknowledged records in the OLD generation's
	// log. Skipping by generation number would silently drop them.
	type scannedLog struct {
		gen  uint64
		recs []Record
		err  error
	}
	logs := make([]scannedLog, 0, len(logGens))
	for _, g := range logGens {
		data, err := os.ReadFile(filepath.Join(path, logName(g)))
		if err != nil {
			return nil, 0, nil, err
		}
		recs, _, serr := ScanFile(data)
		logs = append(logs, scannedLog{gen: g, recs: recs, err: serr})
	}
	for i, lg := range logs {
		// A torn tail is the crash signature of the log that was still being
		// appended to. That is usually the newest generation, but after a
		// failed rotation the shard keeps appending to the old one — so a
		// torn tail is legitimate exactly when no LATER generation holds
		// records. A torn log with appended-to successors was complete when
		// it was superseded; its damage is corruption, not a crash artifact.
		laterHasRecords := false
		for _, l2 := range logs[i+1:] {
			if len(l2.recs) > 0 {
				laterHasRecords = true
				break
			}
		}
		switch {
		case lg.err == nil:
		case errors.Is(lg.err, ErrTornTail):
			if laterHasRecords {
				if !repair {
					return nil, 0, nil, fmt.Errorf("wal: %s: torn frame in superseded log: %w", logName(lg.gen), lg.err)
				}
				rec.RepairedRecords++ // at least the dropped frame
			} else {
				rec.TornRecords++
			}
		default: // ErrCorrupt, ErrBadMagic, ...
			if !repair {
				return nil, 0, nil, fmt.Errorf("wal: %s: %w", logName(lg.gen), lg.err)
			}
			rec.RepairedRecords++
		}
		for _, r := range lg.recs {
			if r.LSN > rec.MaxLSN {
				rec.MaxLSN = r.LSN
			}
			if r.LSN <= rec.SnapshotLSN {
				continue // covered by the checkpoint (rotation crash window)
			}
			rec.Records = append(rec.Records, r)
		}
	}

	return rec, snapGen, logGens, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func lastU64(s []uint64) uint64 {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Path returns the shard directory path.
func (d *Dir) Path() string { return d.path }

// Gen returns the current generation number.
func (d *Dir) Gen() uint64 { return d.gen }

// SetOnDurable installs the post-fsync batch observer on the current log and
// every log a future Checkpoint rotates to (see DurableFunc). Called by the
// shard goroutine, or before the first Checkpoint.
func (d *Dir) SetOnDurable(fn DurableFunc) {
	d.onDurable = fn
	if d.log != nil {
		d.log.SetOnDurable(fn)
	}
}

// LogSize returns the current log's size in bytes (0 before the first
// Checkpoint).
func (d *Dir) LogSize() int64 {
	if d.log == nil {
		return 0
	}
	return d.log.Size()
}

// Checkpoint makes body the durable full state through lsn and truncates
// the log: sync the old log (releasing its pending acknowledgements), open
// the next generation's log, write the new snapshot atomically (tmp +
// rename), fsync the directory, and only then delete the superseded
// generation's files. A crash or failure at any point leaves a directory
// Open can recover: the new snapshot only becomes visible by its rename, a
// failed rotation aborts with the old generation still live (and recovery
// reads every log, so records appended to it afterwards survive), and the
// directory fsync orders the rename before the unlinks so no crash window
// leaves neither generation readable.
func (d *Dir) Checkpoint(lsn uint64, body []byte) error {
	if d.closed {
		return ErrClosed
	}
	if d.log != nil {
		if err := d.log.Sync(); err != nil {
			return err
		}
	}
	next := d.gen + 1
	// New log before the snapshot rename: if either step fails the rotation
	// aborts with the old generation fully intact and the shard keeps
	// appending to its current log.
	nextLog := filepath.Join(d.path, logName(next))
	nl, err := Create(nextLog, d.every, d.stats)
	if err != nil {
		return err
	}
	nl.SetOnDurable(d.onDurable)
	if err := writeSnapshotFile(filepath.Join(d.path, snapName(next)), lsn, body); err != nil {
		_ = nl.Close()
		_ = os.Remove(nextLog)
		return err
	}
	// Make the snapshot rename and the new log's directory entry durable
	// BEFORE unlinking what they supersede: POSIX orders none of these
	// metadata ops without an intervening fsync, so deleting first could
	// persist the unlinks but not the rename across a crash.
	if err := syncDir(d.path); err != nil {
		_ = nl.Close()
		_ = os.Remove(nextLog)
		return err
	}
	old := d.log
	oldGen := d.gen
	d.log, d.gen = nl, next
	if old != nil {
		_ = old.Close()
	}
	// Best-effort cleanup: anything this generation supersedes. Leftovers
	// from a crash here are harmless and removed next time.
	ents, _ := os.ReadDir(d.path)
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), "snap-", ".ckpt"); ok && g < next {
			_ = os.Remove(filepath.Join(d.path, e.Name()))
		}
		if g, ok := parseGen(e.Name(), "wal-", ".log"); ok && g <= oldGen {
			_ = os.Remove(filepath.Join(d.path, e.Name()))
		}
		if strings.HasSuffix(e.Name(), ".tmp") {
			_ = os.Remove(filepath.Join(d.path, e.Name()))
		}
	}
	return syncDir(d.path)
}

// Append appends one record to the current log; onDurable fires once it is
// fsynced. Checkpoint must have been called at least once since Open.
func (d *Dir) Append(r Record, onDurable func(error)) {
	if d.log == nil {
		if onDurable != nil {
			onDurable(fmt.Errorf("wal: append before first checkpoint"))
		}
		return
	}
	d.log.Append(r, onDurable)
}

// Sync flushes the current log and waits for durability — the drain
// barrier: after Sync returns, every acknowledged record is on disk.
func (d *Dir) Sync() error {
	if d.log == nil {
		return nil
	}
	return d.log.Sync()
}

// Close syncs and closes the current log. Idempotent.
func (d *Dir) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	if d.log == nil {
		return nil
	}
	return d.log.Close()
}

// writeSnapshotFile writes a checkpoint: magic + one framed TypeSnapshot
// record, via tmp + fsync + rename so a reader (or recovery) never sees a
// partial file.
func writeSnapshotFile(path string, lsn uint64, body []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(Magic)+EncodedSize(len(body)))
	buf = append(buf, Magic[:]...)
	buf = AppendRecord(buf, Record{Type: TypeSnapshot, LSN: lsn, Body: body})
	_, err = f.Write(buf)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// readSnapshotFile loads and verifies a checkpoint file.
func readSnapshotFile(path string) (body []byte, lsn uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	recs, n, err := ScanFile(data)
	if err != nil {
		return nil, 0, err
	}
	if len(recs) != 1 || recs[0].Type != TypeSnapshot || n != len(data) {
		return nil, 0, fmt.Errorf("%w: checkpoint wants exactly one snapshot record, got %d", ErrCorrupt, len(recs))
	}
	return recs[0].Body, recs[0].LSN, nil
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	err = f.Sync()
	// Some filesystems refuse directory fsync; rename durability is then
	// best-effort, which still preserves atomicity.
	if errors.Is(err, os.ErrInvalid) {
		err = nil
	}
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	return err
}
