package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TypeCreate, LSN: 1, Body: []byte(`{"id":"m00000001"}`)},
		{Type: TypeStep, LSN: 2, Body: []byte(`{"id":"m00000001","event":{"arrive":[0,1]}}`)},
		{Type: TypeStep, LSN: 3, Body: nil}, // empty body must frame and decode
		{Type: TypeRebuild, LSN: 4, Body: []byte(`{"id":"m00000001"}`)},
		{Type: TypeDelete, LSN: 5, Body: bytes.Repeat([]byte{0xa5}, 1000)},
	}
}

func encode(recs []Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	want := sampleRecords()
	buf := encode(want)
	got, n, err := Scan(buf)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("Scan consumed %d of %d bytes", n, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("Scan decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].LSN != want[i].LSN || !bytes.Equal(got[i].Body, want[i].Body) {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	for i, r := range want {
		if EncodedSize(len(r.Body)) != len(AppendRecord(nil, r)) {
			t.Errorf("record %d: EncodedSize disagrees with AppendRecord", i)
		}
	}
}

// Truncating the buffer at every possible point must classify as a torn
// tail and hand back exactly the records whose frames are intact.
func TestScanTornTail(t *testing.T) {
	recs := sampleRecords()
	buf := encode(recs)
	bounds := []int{0}
	for _, r := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+EncodedSize(len(r.Body)))
	}
	for cut := 0; cut < len(buf); cut++ {
		got, n, err := Scan(buf[:cut])
		intact := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				intact++
			}
		}
		if cut == bounds[intact] {
			// Clean frame boundary: no tear.
			if err != nil {
				t.Fatalf("cut %d on boundary: unexpected error %v", cut, err)
			}
		} else if !errors.Is(err, ErrTornTail) {
			t.Fatalf("cut %d: err = %v, want ErrTornTail", cut, err)
		}
		if len(got) != intact {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), intact)
		}
		if n != bounds[intact] {
			t.Fatalf("cut %d: consumed %d bytes, want %d", cut, n, bounds[intact])
		}
	}
}

// A damaged byte in anything but the final frame is mid-log corruption; the
// same damage in the final frame is indistinguishable from a torn write.
func TestScanCorruptionClassification(t *testing.T) {
	recs := sampleRecords()
	buf := encode(recs)
	finalStart := len(buf) - EncodedSize(len(recs[len(recs)-1].Body))

	corrupt := append([]byte(nil), buf...)
	corrupt[finalStart-4] ^= 0xff // inside the second-to-last record's body
	got, _, err := Scan(corrupt)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior damage: err = %v, want ErrCorrupt", err)
	}
	if len(got) != len(recs)-2 {
		t.Fatalf("interior damage: decoded %d records, want %d", len(got), len(recs)-2)
	}

	torn := append([]byte(nil), buf...)
	torn[len(torn)-1] ^= 0xff
	got, _, err = Scan(torn)
	if !errors.Is(err, ErrTornTail) {
		t.Fatalf("final-frame damage: err = %v, want ErrTornTail", err)
	}
	if len(got) != len(recs)-1 {
		t.Fatalf("final-frame damage: decoded %d records, want %d", len(got), len(recs)-1)
	}
}

func TestScanBadLengthAndType(t *testing.T) {
	// A bounded bogus length mid-file (frame would end before EOF) is
	// corruption, not a tear.
	buf := encode(sampleRecords())
	bad := append([]byte(nil), buf...)
	bad[0], bad[1], bad[2], bad[3] = 3, 0, 0, 0 // plen 3 < metaSize
	if _, _, err := Scan(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad small length mid-file: err = %v, want ErrCorrupt", err)
	}
	// The same bogus length as the only frame claims past EOF: torn.
	if _, _, err := Scan(bad[:headerSize]); !errors.Is(err, ErrTornTail) {
		t.Fatalf("bad length at EOF: err = %v, want ErrTornTail", err)
	}
	// An unknown record type with a valid CRC is corruption.
	weird := AppendRecord(nil, Record{Type: Type(200), LSN: 9})
	if _, _, err := Scan(weird); !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTornTail) {
		t.Fatalf("unknown type: err = %v, want classification error", err)
	}
}

func TestScanFileMagic(t *testing.T) {
	buf := append([]byte{}, Magic[:]...)
	buf = AppendRecord(buf, Record{Type: TypeCreate, LSN: 1, Body: []byte("x")})
	recs, n, err := ScanFile(buf)
	if err != nil || len(recs) != 1 || n != len(buf) {
		t.Fatalf("ScanFile: recs=%d n=%d err=%v", len(recs), n, err)
	}
	if _, _, err := ScanFile([]byte("NOTAWAL!rest")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}
	if _, _, err := ScanFile([]byte("SPE")); !errors.Is(err, ErrTornTail) {
		t.Fatalf("short file: err = %v, want ErrTornTail", err)
	}
}

// Batched appends must become durable and fire every callback with nil, in
// order, and the file must decode to exactly the appended records.
func TestLogAppendBatchedDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-test.log")
	var (
		statMu    sync.Mutex
		statRecs  int
		statBytes int
	)
	l, err := Create(path, time.Millisecond, func(records, bytes int, _ time.Duration) {
		statMu.Lock()
		statRecs += records
		statBytes += bytes
		statMu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	var wg sync.WaitGroup
	order := make([]int, 0, n)
	var orderMu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		i := i
		l.Append(Record{Type: TypeStep, LSN: uint64(i + 1), Body: []byte(fmt.Sprintf("body-%03d", i))}, func(err error) {
			if err != nil {
				t.Errorf("append %d: durable callback error %v", i, err)
			}
			orderMu.Lock()
			order = append(order, i)
			orderMu.Unlock()
			wg.Done()
		})
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1]+1 {
			t.Fatalf("callbacks fired out of order: %v", order[:i+1])
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := ScanFile(data)
	if err != nil || len(recs) != n {
		t.Fatalf("file decode: %d records, err %v", len(recs), err)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d", i, r.LSN)
		}
	}
	statMu.Lock()
	defer statMu.Unlock()
	if statRecs != n {
		t.Errorf("stats saw %d records, want %d", statRecs, n)
	}
	if int64(statBytes) != l.Size()-int64(len(Magic)) {
		t.Errorf("stats saw %d bytes, log size says %d", statBytes, l.Size()-int64(len(Magic)))
	}
}

// Strict mode (every < 0) makes each Append durable before it returns.
func TestLogStrictMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "strict.log")
	l, err := Create(path, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fired := false
	l.Append(Record{Type: TypeCreate, LSN: 1, Body: []byte("now")}, func(err error) {
		if err != nil {
			t.Errorf("durable callback: %v", err)
		}
		fired = true
	})
	if !fired {
		t.Fatal("strict append returned before the durable callback fired")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs, _, err := ScanFile(data); err != nil || len(recs) != 1 {
		t.Fatalf("strict append not on disk: %d records, err %v", len(recs), err)
	}
}

// Sync is the drain barrier: after it returns, everything previously
// appended is on disk even with a long batching interval.
func TestLogSyncBarrier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.log")
	l, err := Create(path, time.Hour, nil) // batch interval long enough to never fire
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: TypeStep, LSN: uint64(i + 1)}, nil)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if recs, _, err := ScanFile(data); err != nil || len(recs) != 10 {
		t.Fatalf("after Sync: %d records on disk, err %v", len(recs), err)
	}
}

func TestLogAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.log")
	l, err := Create(path, time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	var got error
	l.Append(Record{Type: TypeStep, LSN: 1}, func(err error) { got = err })
	if !errors.Is(got, ErrClosed) {
		t.Fatalf("append after close: callback err = %v, want ErrClosed", got)
	}
}
