package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode hammers the frame decoder with arbitrary bytes. Whatever the
// input, Scan must never panic, must consume only whole intact frames, must
// classify any failure as exactly one of torn/corrupt, and the records it
// does return must re-encode to the very bytes it consumed (the framing is
// canonical, so decode is the left inverse of encode).
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encode(sampleRecords()))
	f.Add(encode(sampleRecords())[:10])
	corrupt := encode(sampleRecords())
	corrupt[5] ^= 0x40
	f.Add(corrupt)
	f.Add(append(Magic[:], encode(sampleRecords())...))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Add(bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, n, err := Scan(data)
		if n < 0 || n > len(data) {
			t.Fatalf("Scan consumed %d of %d bytes", n, len(data))
		}
		if err == nil && n != len(data) {
			t.Fatalf("clean scan left %d bytes unconsumed", len(data)-n)
		}
		if err != nil && !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("unclassified scan error: %v", err)
		}
		var re []byte
		for _, r := range recs {
			if r.Type < TypeCreate || r.Type > TypeFork {
				t.Fatalf("decoded record with invalid type %d", r.Type)
			}
			if len(r.Body) > MaxRecordLen {
				t.Fatalf("decoded record body of %d bytes exceeds MaxRecordLen", len(r.Body))
			}
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encoding %d records does not reproduce the %d consumed bytes", len(recs), n)
		}

		// The file-level wrapper must be equally panic-free, whether or not
		// the data happens to start with the magic.
		if _, fn, ferr := ScanFile(data); ferr == nil && fn != len(data) {
			t.Fatalf("clean ScanFile left %d bytes unconsumed", len(data)-fn)
		}
	})
}
