package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// openDir opens a Dir and writes the initial checkpoint that creates the
// first log generation — the step the server's recovery performs before
// any append.
func openDir(t *testing.T, dir string) *Dir {
	t.Helper()
	d, _, err := Open(dir, time.Millisecond, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := d.Checkpoint(0, []byte("init")); err != nil {
		t.Fatal(err)
	}
	return d
}

// appendWait appends one record and blocks until it is durable.
func appendWait(t *testing.T, d *Dir, r Record) {
	t.Helper()
	done := make(chan error, 1)
	d.Append(r, func(err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func stepRecord(lsn uint64) Record {
	return Record{Type: TypeStep, LSN: lsn, Body: []byte(`{"id":"m1","event":{}}`)}
}

// ReadRecord must round-trip what AppendRecord frames, report clean EOF
// between frames, and distinguish a torn mid-frame tail.
func TestReadRecordRoundTrip(t *testing.T) {
	var buf []byte
	buf = append(buf, Magic[:]...)
	for lsn := uint64(1); lsn <= 3; lsn++ {
		buf = AppendRecord(buf, stepRecord(lsn))
	}

	rd := bytes.NewReader(buf)
	if err := ReadMagic(rd); err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(1); lsn <= 3; lsn++ {
		r, err := ReadRecord(rd)
		if err != nil {
			t.Fatalf("record %d: %v", lsn, err)
		}
		if r.LSN != lsn || r.Type != TypeStep {
			t.Fatalf("record %d: got %+v", lsn, r)
		}
	}
	if _, err := ReadRecord(rd); err != io.EOF {
		t.Fatalf("EOF between frames: got %v", err)
	}

	// Truncate mid-frame: the reader must not report a clean EOF.
	rd = bytes.NewReader(buf[:len(buf)-3])
	if err := ReadMagic(rd); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := ReadRecord(rd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ReadRecord(rd); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame: got %v, want ErrUnexpectedEOF", err)
	}
}

// A Tail must deliver every record exactly once, in order, across a
// checkpoint rotation that unlinks the log it was reading, and resume
// correctly from a mid-stream cursor.
func TestTailAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir)

	for lsn := uint64(1); lsn <= 5; lsn++ {
		appendWait(t, d, stepRecord(lsn))
	}

	tl := OpenTail(dir, 0)
	defer tl.Close()
	var got []uint64
	drain := func() {
		t.Helper()
		for {
			recs, err := tl.Next()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) == 0 {
				return
			}
			for _, r := range recs {
				got = append(got, r.LSN)
			}
		}
	}
	drain()
	if len(got) != 5 {
		t.Fatalf("pre-rotation: got %v, want lsns 1..5", got)
	}

	// Rotate (unlinks the tailed log), then keep appending to the new
	// generation: the tail must follow without loss or duplication.
	if err := d.Checkpoint(5, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	for lsn := uint64(6); lsn <= 9; lsn++ {
		appendWait(t, d, stepRecord(lsn))
	}
	drain()
	for i, lsn := range got {
		if lsn != uint64(i+1) {
			t.Fatalf("sequence broken: %v", got)
		}
	}
	if len(got) != 9 {
		t.Fatalf("post-rotation: got %v, want lsns 1..9", got)
	}
	if tl.Cursor() != 9 {
		t.Fatalf("cursor = %d, want 9", tl.Cursor())
	}

	// A second tail resuming mid-stream sees only what is past its cursor.
	tl2 := OpenTail(dir, 7)
	defer tl2.Close()
	var resumed []uint64
	for {
		recs, err := tl2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		for _, r := range recs {
			resumed = append(resumed, r.LSN)
		}
	}
	if len(resumed) != 2 || resumed[0] != 8 || resumed[1] != 9 {
		t.Fatalf("resume from 7: got %v, want [8 9]", resumed)
	}
}

// NewestSnapshot must surface the latest checkpoint a rotation left behind.
func TestNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := NewestSnapshot(dir); err != nil || ok {
		t.Fatalf("fresh dir: ok=%v err=%v, want no snapshot", ok, err)
	}
	d := openDir(t, dir)

	appendWait(t, d, stepRecord(1))
	if err := d.Checkpoint(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	appendWait(t, d, stepRecord(2))
	if err := d.Checkpoint(2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	body, lsn, ok, err := NewestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if lsn != 2 || string(body) != "second" {
		t.Fatalf("got lsn=%d body=%q, want the newest checkpoint", lsn, body)
	}
}

// The publish hook must fire after fsync but before the durability
// callbacks, with a batch that scans back to the appended records — the
// ordering the replication ack guarantee leans on.
func TestPublishHookOrdering(t *testing.T) {
	dir := t.TempDir()
	d := openDir(t, dir)

	// Both the hook and the durability callback run on the flushing
	// goroutine, so recording order needs no locking as long as the test
	// only reads after the ack.
	var order []string
	var batches [][]byte
	var lastLSN uint64
	d.SetOnDurable(func(batch []byte, last uint64) {
		order = append(order, "publish")
		batches = append(batches, append([]byte(nil), batch...))
		lastLSN = last
	})
	done := make(chan error, 1)
	d.Append(stepRecord(1), func(err error) {
		order = append(order, "ack")
		done <- err
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	if len(order) < 2 || order[0] != "publish" || order[1] != "ack" {
		t.Fatalf("order = %v, want publish before ack", order)
	}
	if lastLSN != 1 {
		t.Fatalf("published lastLSN = %d, want 1", lastLSN)
	}
	recs, _, err := Scan(batches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 1 || recs[0].Type != TypeStep {
		t.Fatalf("published batch scans to %+v", recs)
	}

	// The hook must survive a rotation: batches on the new generation's
	// log still publish.
	if err := d.Checkpoint(1, []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	appendWait(t, d, stepRecord(2))
	if lastLSN != 2 {
		t.Fatalf("post-rotation publish lastLSN = %d, want 2", lastLSN)
	}
}
