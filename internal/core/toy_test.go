package core_test

import (
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/matching"
	"specmatch/internal/paperexample"
	"specmatch/internal/stability"
	"specmatch/internal/trace"
)

// TestToyStageI replays Fig. 1: the adapted deferred acceptance on the Fig. 3
// toy market must converge in 4 proposal rounds to µ(a)={4}, µ(b)={3,5},
// µ(c)={1,2} with welfare 27.
func TestToyStageI(t *testing.T) {
	m := paperexample.Toy()
	mu, stats, err := core.RunStageI(m, core.Options{})
	if err != nil {
		t.Fatalf("RunStageI: %v", err)
	}
	if stats.Rounds != 4 {
		t.Errorf("Stage I rounds = %d, want 4 (Fig. 1 shows four proposal rounds)", stats.Rounds)
	}
	if stats.Welfare != paperexample.ToyStageIWelfare {
		t.Errorf("Stage I welfare = %v, want %v", stats.Welfare, paperexample.ToyStageIWelfare)
	}
	assertCoalitions(t, mu, paperexample.ToyStageIMatching())
}

// TestToyStageIProposalSequence checks the exact proposal order of Fig. 1:
// round 1: 1→a, 2→a, 3→b, 4→b, 5→c; round 2: 2→b, 4→a; round 3: 1→b, 2→c;
// round 4: 1→c, 5→b (0-indexed below).
func TestToyStageIProposalSequence(t *testing.T) {
	m := paperexample.Toy()
	rec := trace.NewRecorder()
	if _, _, err := core.RunStageI(m, core.Options{Recorder: rec}); err != nil {
		t.Fatalf("RunStageI: %v", err)
	}
	type prop struct{ round, buyer, seller int }
	want := []prop{
		{1, 0, 0}, {1, 1, 0}, {1, 2, 1}, {1, 3, 1}, {1, 4, 2},
		{2, 1, 1}, {2, 3, 0},
		{3, 0, 1}, {3, 1, 2},
		{4, 0, 2}, {4, 4, 1},
	}
	var got []prop
	for _, e := range rec.Filter(trace.KindPropose) {
		got = append(got, prop{e.Round, e.Buyer, e.Seller})
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("proposal sequence mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestToyFullRun replays Fig. 2: Stage II lifts the toy market to
// µ(a)={2,4}, µ(b)={3}, µ(c)={1,5} with welfare 30, and the result is
// individually rational and Nash-stable (Props. 3–4).
func TestToyFullRun(t *testing.T) {
	m := paperexample.Toy()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Welfare != paperexample.ToyFinalWelfare {
		t.Errorf("final welfare = %v, want %v", res.Welfare, paperexample.ToyFinalWelfare)
	}
	if res.StageI.Welfare != paperexample.ToyStageIWelfare {
		t.Errorf("Stage I welfare = %v, want %v", res.StageI.Welfare, paperexample.ToyStageIWelfare)
	}
	assertCoalitions(t, res.Matching, paperexample.ToyFinalMatching())

	rep := stability.Check(m, res.Matching)
	if !rep.InterferenceFree {
		t.Errorf("result not interference-free: %v", rep.Interference)
	}
	if !rep.IndividuallyRational {
		t.Errorf("result not individually rational: %v", rep.IR)
	}
	if !rep.NashStable {
		t.Errorf("result not Nash-stable: %v", rep.Nash)
	}
}

// TestToyStageIIEvents checks the published Stage II trace: buyer 2's
// transfer to seller a is the only granted transfer, and seller c's
// invitation of buyer 5 is the only invitation, accepted.
func TestToyStageIIEvents(t *testing.T) {
	m := paperexample.Toy()
	rec := trace.NewRecorder()
	if _, err := core.Run(m, core.Options{Recorder: rec}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	accepts := rec.Filter(trace.KindTransferAccept)
	if len(accepts) != 1 || accepts[0].Buyer != 1 || accepts[0].Seller != 0 {
		t.Errorf("transfer accepts = %v, want exactly buyer 1 → seller 0", accepts)
	}
	invites := rec.Filter(trace.KindInvite)
	if len(invites) != 1 || invites[0].Buyer != 4 || invites[0].Seller != 2 {
		t.Errorf("invites = %v, want exactly seller 2 → buyer 4", invites)
	}
	inviteAccepts := rec.Filter(trace.KindInviteAccept)
	if len(inviteAccepts) != 1 || inviteAccepts[0].Buyer != 4 {
		t.Errorf("invite accepts = %v, want buyer 4 accepting", inviteAccepts)
	}
}

// TestToyPhase2Indispensable reproduces the paper's observation that Phase 2,
// though a minor welfare contributor, is required: skipping it on the toy
// leaves buyer 5 matched below her Nash-stable position.
func TestToyPhase2Indispensable(t *testing.T) {
	m := paperexample.Toy()
	res, err := core.Run(m, core.Options{SkipInvitation: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Welfare >= paperexample.ToyFinalWelfare {
		t.Errorf("welfare without Phase 2 = %v; want < %v", res.Welfare, paperexample.ToyFinalWelfare)
	}
	if devs := stability.CheckNashStable(m, res.Matching); len(devs) == 0 {
		t.Error("matching without Phase 2 should not be Nash-stable on the toy market")
	}
}

func assertCoalitions(t *testing.T, mu *matching.Matching, want [][]int) {
	t.Helper()
	for i, coalition := range want {
		got := mu.Coalition(i)
		if len(got) == 0 && len(coalition) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, coalition) {
			t.Errorf("µ(%d) = %v, want %v", i, got, coalition)
		}
	}
}
