package core_test

import (
	"strings"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/trace"
)

// TestRunSpanTree: a traced engine run yields one trace rooted at core.run,
// with every round a child of the root and every solve a child of a round —
// and identical results to the untraced run.
func TestRunSpanTree(t *testing.T) {
	m := generate(t, market.Config{Sellers: 4, Buyers: 16, Seed: 11})
	plain, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fl := trace.NewFlight(1 << 14)
	res, err := core.Run(m, core.Options{Flight: fl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare != plain.Welfare || !res.Matching.Equal(plain.Matching) {
		t.Fatalf("tracing changed the outcome: welfare %v vs %v", res.Welfare, plain.Welfare)
	}

	spans := fl.Snapshot()
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	var rounds, solves int
	for _, s := range spans {
		switch s.Name {
		case "core.run":
			if !s.Parent.IsZero() {
				t.Errorf("core.run must be the root, has parent %s", s.Parent)
			}
			for _, want := range []string{"rounds=", "matched=", "welfare="} {
				if !strings.Contains(s.Attrs, want) {
					t.Errorf("core.run attrs %q missing %s", s.Attrs, want)
				}
			}
		case "core.round":
			rounds++
			if p, ok := byID[s.Parent]; !ok || p.Name != "core.run" {
				t.Errorf("core.round parent = %v, want core.run", s.Parent)
			}
			if !strings.Contains(s.Attrs, "stage=") || !strings.Contains(s.Attrs, "messages=") {
				t.Errorf("core.round attrs %q missing stage/messages", s.Attrs)
			}
		case "core.solve":
			solves++
			if p, ok := byID[s.Parent]; !ok || p.Name != "core.round" {
				t.Errorf("core.solve parent = %v, want core.round", s.Parent)
			}
			if !strings.Contains(s.Attrs, "seller=") || !strings.Contains(s.Attrs, "src=") {
				t.Errorf("core.solve attrs %q missing seller/src", s.Attrs)
			}
		default:
			t.Errorf("unexpected span name %q in a core run", s.Name)
		}
	}
	if rounds == 0 || solves == 0 {
		t.Errorf("got %d rounds and %d solves, want both > 0", rounds, solves)
	}
	if int64(rounds) != int64(res.TotalRounds()) {
		t.Errorf("%d core.round spans, result reports %d rounds", rounds, res.TotalRounds())
	}
}

// TestRunSpanTreeWorkersEqual: the span layer must hold at any worker count
// (spans are recorded from the fan-out goroutines), and results stay
// bit-identical.
func TestRunSpanTreeWorkersEqual(t *testing.T) {
	m := generate(t, market.Config{Sellers: 5, Buyers: 20, Seed: 3})
	fl1 := trace.NewFlight(1 << 14)
	r1, err := core.Run(m, core.Options{Flight: fl1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fl4 := trace.NewFlight(1 << 14)
	r4, err := core.Run(m, core.Options{Flight: fl4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Welfare != r4.Welfare || !r1.Matching.Equal(r4.Matching) {
		t.Fatalf("workers changed a traced run: %v vs %v", r1.Welfare, r4.Welfare)
	}
	count := func(spans []trace.Span, name string) int {
		n := 0
		for _, s := range spans {
			if s.Name == name {
				n++
			}
		}
		return n
	}
	s1, s4 := fl1.Snapshot(), fl4.Snapshot()
	for _, name := range []string{"core.run", "core.round", "core.solve"} {
		if count(s1, name) != count(s4, name) {
			t.Errorf("%s spans: %d at 1 worker, %d at 4", name, count(s1, name), count(s4, name))
		}
	}
}

// TestOnlineStepSpanChain: StepTraced parents the repair run under the
// caller's context, so a service request chains online.step -> core.dirty
// (the incremental repair pass) -> core.round without gaps, and with
// DisableIncremental the same shape via core.repair instead.
func TestOnlineStepSpanChain(t *testing.T) {
	for _, tc := range []struct {
		name       string
		disable    bool
		repairSpan string
	}{
		{"incremental", false, "core.dirty"},
		{"full", true, "core.repair"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := generate(t, market.Config{Sellers: 3, Buyers: 12, Seed: 5})
			fl := trace.NewFlight(1 << 14)
			s, err := online.NewSession(m, core.Options{Flight: fl, DisableIncremental: tc.disable})
			if err != nil {
				t.Fatal(err)
			}
			root := fl.Start(trace.SpanContext{}, "test.root")
			if _, err := s.StepTraced(online.Event{Arrive: []int{0, 1, 2, 3}}, root.Context()); err != nil {
				t.Fatal(err)
			}
			root.End()

			spans := fl.Snapshot()
			byID := make(map[trace.SpanID]trace.Span, len(spans))
			for _, sp := range spans {
				byID[sp.ID] = sp
			}
			parentName := func(sp trace.Span) string { return byID[sp.Parent].Name }
			var sawStep, sawRepair bool
			for _, sp := range spans {
				switch sp.Name {
				case "online.step":
					sawStep = true
					if parentName(sp) != "test.root" {
						t.Errorf("online.step parent = %q, want test.root", parentName(sp))
					}
				case tc.repairSpan:
					sawRepair = true
					if parentName(sp) != "online.step" {
						t.Errorf("%s parent = %q, want online.step", tc.repairSpan, parentName(sp))
					}
				case "core.round":
					if parentName(sp) != tc.repairSpan {
						t.Errorf("core.round parent = %q, want %s", parentName(sp), tc.repairSpan)
					}
				}
			}
			if !sawStep || !sawRepair {
				t.Errorf("missing spans: step=%v repair(%s)=%v", sawStep, tc.repairSpan, sawRepair)
			}
		})
	}
}
