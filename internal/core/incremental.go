// Incremental repair: the persistent churn engine behind package online.
//
// The full Step path rebuilds the effective sub-market — M interference
// graphs, M×N price rows — on every event, then runs Stage II over it. The
// Incremental engine keeps one Stage II engine alive for a session's whole
// lifetime and feeds it deltas instead:
//
//   - the effective price rows are maintained in place (a departure zeroes a
//     column, a channel reclaim zeroes a row), never rebuilt;
//   - buyer preference orders are computed once against the base market —
//     the transfer phase's strict-improvement test skips zeroed entries
//     inline, so the base orders replay the exact application schedule the
//     per-step effective orders would produce;
//   - the per-seller coalition memo persists across steps. Solver weights
//     are always base price × active indicator and canonicalization drops
//     zero-weight candidates, so a canonical candidate set identifies its
//     coalition for as long as the channel's interference graph stands; a
//     Move event that rewires a channel drops that channel's whole memo
//     (the graph is an input to every memoized decision);
//   - the dirty neighborhood of the event (churned buyers plus their
//     interference closure across online channels, via the graph package's
//     word-parallel UnionRowsInto kernel) bounds where new MWIS work can
//     arise and is exported through core.incremental.* metrics and the
//     core.dirty span.
//
// The replay is exact by construction: every protocol round, message,
// decision, welfare sum and StepStats field is bit-for-bit identical to the
// full path's. The win is eliminating the per-step rebuild and steady-state
// allocation, not changing the protocol — round structure is global (every
// active buyer's cursor advances each phase), so only the expensive parts
// (market construction, MWIS solves, scratch churn) contract to the dirty
// region.
package core

import (
	"fmt"

	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

// Churn describes the effective deltas one online step applied to a session,
// in application order: Departed buyers were deactivated (and unassigned),
// Arrived buyers activated, ChannelsDown reclaimed (displacing the listed
// Displaced buyers), ChannelsUp re-offered. Lists carry only real
// transitions — a departure of an already-inactive buyer never appears.
type Churn struct {
	Arrived      []int
	Departed     []int
	Displaced    []int
	ChannelsUp   []int
	ChannelsDown []int

	// Moved lists buyers relocated by the step (the session already rewired
	// the base market's graphs); MovedOldNbrs their pre-move interference
	// neighbors across channels (duplicates allowed — consumers set bits),
	// so the dirty closure covers dissolved conflicts as well as created
	// ones. Rewired lists the channels whose graph actually changed; the
	// engine drops those channels' coalition memos, which would otherwise
	// pin decisions made against the old graph.
	Moved        []int
	MovedOldNbrs []int
	Rewired      []int
}

// incMetrics holds the incremental engine's observability handles; nil when
// the session runs without a registry.
type incMetrics struct {
	steps        *obs.Counter
	coldSyncs    *obs.Counter
	dirtyBuyers  *obs.Counter
	dirtySellers *obs.Counter
	solves       *obs.Counter
	memoHits     *obs.Counter
}

// Incremental is a persistent repair engine bound to one base market and one
// online session's evolving (active, offline) state. Construct with
// NewIncremental; Step replaces the session's per-event Repair call. Not
// safe for concurrent use — sessions are single-writer.
type Incremental struct {
	m    *market.Market
	opts Options
	eng  *engine

	basePref [][]int // per-buyer base-market preference orders, computed once
	prefView [][]int // entry j aliases basePref[j] while j is active, nil otherwise
	active   []bool
	offline  []bool
	ready    bool

	seed     graph.Bits // churned buyers
	closure  graph.Bits // seed ∪ N(seed) across online channels
	dirtySel graph.Bits // sellers the dirty region can reach

	prevSolves int64      // cumulative engine solves at the end of the last step
	prevCache  CacheStats // cumulative memo counters at the end of the last step

	met *incMetrics
}

// NewIncremental returns an incremental repair engine for the market. Heavy
// state (price rows, preference orders, solver scratch) is allocated on the
// first Step, so constructing one for a session that never steps is cheap.
func NewIncremental(m *market.Market, opts Options) *Incremental {
	opts = opts.withDefaults()
	inc := &Incremental{m: m, opts: opts}
	if opts.Metrics != nil {
		inc.met = &incMetrics{
			steps:        opts.Metrics.Counter("core.incremental.steps"),
			coldSyncs:    opts.Metrics.Counter("core.incremental.cold_syncs"),
			dirtyBuyers:  opts.Metrics.Counter("core.incremental.dirty_buyers"),
			dirtySellers: opts.Metrics.Counter("core.incremental.dirty_sellers"),
			solves:       opts.Metrics.Counter("core.incremental.solves"),
			memoHits:     opts.Metrics.Counter("core.incremental.memo_hits"),
		}
	}
	return inc
}

// sync (re)builds the engine's effective price rows and preference views from
// a full (active, offline) snapshot — the cold-start path, run once on the
// first Step and again only if a caller ever re-syncs.
func (inc *Incremental) sync(active, offline []bool) {
	numSellers, numBuyers := inc.m.M(), inc.m.N()
	if inc.eng == nil {
		inc.eng = newEngine(inc.m, inc.opts)
		inc.basePref = make([][]int, numBuyers)
		for j := range inc.basePref {
			inc.basePref[j] = inc.m.BuyerPrefOrder(j)
		}
		inc.prefView = make([][]int, numBuyers)
		inc.eng.basePref = inc.prefView
		inc.active = make([]bool, numBuyers)
		inc.offline = make([]bool, numSellers)
		inc.seed = graph.NewBits(numBuyers)
		inc.closure = graph.NewBits(numBuyers)
		inc.dirtySel = graph.NewBits(numSellers)
	}
	copy(inc.active, active)
	copy(inc.offline, offline)
	for i := 0; i < numSellers; i++ {
		row := inc.eng.rows[i]
		for j := 0; j < numBuyers; j++ {
			if inc.offline[i] || !inc.active[j] {
				row[j] = 0
			} else {
				row[j] = inc.m.Price(i, j)
			}
		}
	}
	for j := 0; j < numBuyers; j++ {
		if inc.active[j] {
			inc.prefView[j] = inc.basePref[j]
		} else {
			inc.prefView[j] = nil
		}
	}
	inc.ready = true
}

// apply folds one step's churn into the maintained rows and views, in the
// same order the session applied it (departures before arrivals, reclaims
// before re-offers), touching only the churned rows and columns.
func (inc *Incremental) apply(ch Churn) {
	numSellers, numBuyers := inc.m.M(), inc.m.N()
	for _, j := range ch.Departed {
		inc.active[j] = false
		inc.prefView[j] = nil
		for i := 0; i < numSellers; i++ {
			inc.eng.rows[i][j] = 0
		}
	}
	for _, j := range ch.Arrived {
		inc.active[j] = true
		inc.prefView[j] = inc.basePref[j]
		for i := 0; i < numSellers; i++ {
			if !inc.offline[i] {
				inc.eng.rows[i][j] = inc.m.Price(i, j)
			}
		}
	}
	for _, i := range ch.ChannelsDown {
		inc.offline[i] = true
		row := inc.eng.rows[i]
		for j := 0; j < numBuyers; j++ {
			row[j] = 0
		}
	}
	for _, i := range ch.ChannelsUp {
		inc.offline[i] = false
		row := inc.eng.rows[i]
		for j := 0; j < numBuyers; j++ {
			if inc.active[j] {
				row[j] = inc.m.Price(i, j)
			} else {
				row[j] = 0
			}
		}
	}
	// A rewired interference graph invalidates every coalition the channel's
	// memo pinned; moves change no price, so rows and views stand.
	if inc.eng.caches != nil {
		for _, i := range ch.Rewired {
			inc.eng.caches[i].entries = nil
		}
	}
}

// computeDirty derives the event's dirty neighborhood: the churned buyers
// (all active buyers on a cold start) plus their one-hop interference
// closure across every online channel, and the sellers that region can
// reach. This is the a-priori bound on where repair can create new MWIS
// work; round structure itself stays global (see the package comment).
func (inc *Incremental) computeDirty(ch Churn, cold bool) (dirtyBuyers, dirtySellers int) {
	numSellers := inc.m.M()
	inc.seed.Reset()
	inc.closure.Reset()
	inc.dirtySel.Reset()
	if cold {
		for j, a := range inc.active {
			if a {
				inc.seed.Set(j)
			}
		}
	} else {
		for _, j := range ch.Arrived {
			inc.seed.Set(j)
		}
		for _, j := range ch.Departed {
			inc.seed.Set(j)
		}
		for _, j := range ch.Displaced {
			inc.seed.Set(j)
		}
		// A moved buyer dirties both neighborhoods: the new one via her own
		// (already rewired) rows, the old one via the pre-move neighbor list
		// the session collected before rewiring.
		for _, j := range ch.Moved {
			inc.seed.Set(j)
		}
		for _, j := range ch.MovedOldNbrs {
			inc.seed.Set(j)
		}
	}
	inc.closure.Or(inc.seed)
	for i := 0; i < numSellers; i++ {
		if inc.offline[i] {
			continue
		}
		inc.m.Graph(i).UnionRowsInto(inc.seed, inc.closure)
	}
	for _, i := range ch.ChannelsDown {
		inc.dirtySel.Set(i)
	}
	for _, i := range ch.ChannelsUp {
		inc.dirtySel.Set(i)
	}
	for _, i := range ch.Rewired {
		inc.dirtySel.Set(i)
	}
	inc.closure.ForEach(func(j int) bool {
		for i := 0; i < numSellers; i++ {
			if !inc.offline[i] && inc.eng.rows[i][j] > 0 {
				inc.dirtySel.Set(i)
			}
		}
		return true
	})
	return inc.closure.Count(), inc.dirtySel.Count()
}

// Step repairs mu after one churn event, replacing the full path's
// effective-market rebuild + Repair with an in-place delta pass. The session
// must have already applied the event to mu (departed and displaced buyers
// unassigned, arrivals active but unmatched); ch lists the effective
// transitions and active/offline are the session's post-event state (only
// read on the first Step, which cold-syncs from them — later steps maintain
// internal copies from ch alone).
//
// The result is bit-for-bit the Result the full path's core.Repair would
// return on the rebuilt effective sub-market: same matching, same welfare
// floats, same round, message and cache counts.
func (inc *Incremental) Step(mu *matching.Matching, ch Churn, active, offline []bool, parent trace.SpanContext) (Result, error) {
	cold := !inc.ready
	if cold {
		inc.sync(active, offline)
		if inc.met != nil {
			inc.met.coldSyncs.Inc()
		}
	} else {
		inc.apply(ch)
	}
	e := inc.eng

	// The full path validates the whole matching per step; here the session
	// maintains the invariant (it only unassigns, and arrivals join
	// unmatched), so only the event's own contract is re-checked — O(|event|).
	for _, j := range ch.Departed {
		if mu.IsMatched(j) {
			return Result{}, fmt.Errorf("core: incremental step: departed buyer %d still matched", j)
		}
	}
	for _, j := range ch.Arrived {
		if mu.IsMatched(j) {
			return Result{}, fmt.Errorf("core: incremental step: arrived buyer %d already matched", j)
		}
	}

	span := inc.opts.Flight.Start(parent, "core.dirty")
	defer span.End()
	e.runCtx = span.Context()

	dirtyBuyers, dirtySellers := inc.computeDirty(ch, cold)

	res := Result{Matching: mu}
	res.StageI.Welfare = e.welfare(mu)
	solvesBefore := e.solves.Load()

	var inviteLists [][]int
	if !inc.opts.SkipTransfer {
		var err error
		var phase1 StageStats
		inviteLists, phase1, err = e.runTransfer(mu)
		if err != nil {
			return Result{}, fmt.Errorf("core: incremental transfer: %w", err)
		}
		res.Phase1 = phase1
	}
	res.Phase1.Welfare = e.welfare(mu)

	if !inc.opts.SkipInvitation {
		phase2, err := e.runInvitation(mu, inviteLists)
		if err != nil {
			return Result{}, fmt.Errorf("core: incremental invitation: %w", err)
		}
		res.Phase2 = phase2
	}
	res.Phase2.Welfare = e.welfare(mu)

	res.Welfare = res.Phase2.Welfare
	res.Matched = mu.MatchedCount()

	// The engine's counters are cumulative across the session; Result and
	// the registry want this step's own contribution.
	total := e.cacheStats()
	res.Cache = CacheStats{
		Hits:        total.Hits - inc.prevCache.Hits,
		Independent: total.Independent - inc.prevCache.Independent,
		Misses:      total.Misses - inc.prevCache.Misses,
	}
	inc.prevCache = total
	stepSolves := e.solves.Load() - solvesBefore
	inc.prevSolves += stepSolves
	e.publish(&res, stepSolves)

	if inc.met != nil {
		inc.met.steps.Inc()
		inc.met.dirtyBuyers.Add(int64(dirtyBuyers))
		inc.met.dirtySellers.Add(int64(dirtySellers))
		inc.met.solves.Add(stepSolves)
		inc.met.memoHits.Add(int64(res.Cache.Hits + res.Cache.Independent))
	}
	if span.Active() {
		span.Annotate(fmt.Sprintf("dirty_buyers=%d dirty_sellers=%d rounds=%d matched=%d welfare=%.6g",
			dirtyBuyers, dirtySellers, res.TotalRounds(), res.Matched, res.Welfare))
	}
	return res, nil
}
