package core

import (
	"fmt"
	"sort"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/trace"
)

// currentUtility is buyer j's utility under mu. All matchings this engine
// handles are interference-free, so it is her matched price or zero.
func currentUtility(m *market.Market, mu *matching.Matching, j int) float64 {
	i := mu.SellerOf(j)
	if i == market.Unmatched {
		return 0
	}
	return m.Price(i, j)
}

// runTransfer executes Stage II Phase 1 (Algorithm 2 lines 4–17), mutating mu
// in place. It returns each seller's accumulated invitation list R_i: the
// transfer applicants she rejected, in arrival order without duplicates.
//
// Semantics fixed by the paper's worked example (Fig. 2): within a round all
// sellers decide against the coalition snapshot taken at the start of the
// round, then all granted transfers take effect simultaneously — seller c
// rejects buyer 5 against µ(c) = {1,2} even though buyer 2's simultaneous
// transfer to seller a is granted in the same round. The snapshot semantics
// are also what makes the per-seller fan-out safe: decisions read only the
// snapshot, and grants are applied in seller-ID order afterwards.
func (e *engine) runTransfer(mu *matching.Matching) ([][]int, StageStats, error) {
	m := e.m
	numSellers, numBuyers := m.M(), m.N()
	var stats StageStats

	// T_j is consumed through a cursor into the buyer's descending
	// preference order. Entries no better than the buyer's current utility
	// are skipped dynamically: applications go out best-first, so once one
	// is granted every remaining entry is worse than the new match.
	prefOrder := make([][]int, numBuyers)
	next := make([]int, numBuyers)
	for j := 0; j < numBuyers; j++ {
		prefOrder[j] = m.BuyerPrefOrder(j)
	}

	inviteLists := make([][]int, numSellers) // R_i, in arrival order
	inInvite := make([]map[int]struct{}, numSellers)
	for i := range inInvite {
		inInvite[i] = make(map[int]struct{})
	}

	applicants := make([][]int, numSellers)
	snapshot := make([][]int, numSellers)

	// Each buyer applies at most M times, so M rounds suffice (Prop. 2).
	maxRounds := numSellers + 2
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, stats, fmt.Errorf("phase 1 exceeded its O(M)=%d round bound", maxRounds)
		}
		roundStart := e.roundTimer()
		roundSpan := e.startRound()

		// Application step: one application per buyer with a strictly
		// better seller left to try.
		applicationsMade := 0
		for i := range applicants {
			applicants[i] = applicants[i][:0]
		}
		for j := 0; j < numBuyers; j++ {
			cur := currentUtility(m, mu, j)
			target := market.Unmatched
			for next[j] < len(prefOrder[j]) {
				i := prefOrder[j][next[j]]
				next[j]++
				if m.Price(i, j) > cur && i != mu.SellerOf(j) {
					target = i
					break
				}
			}
			if target == market.Unmatched {
				continue
			}
			applicants[target] = append(applicants[target], j)
			applicationsMade++
			stats.Messages++
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindTransferApply, Buyer: j, Seller: target})
		}
		if applicationsMade == 0 {
			break
		}
		stats.Rounds = round

		// Snapshot all coalitions before any seller decides.
		for i := 0; i < numSellers; i++ {
			snapshot[i] = mu.Coalition(i)
		}

		// Decision step: sellers admit the best independent subset of
		// applicants compatible with their (unevictable) snapshot coalition,
		// fanned out per seller; grants and trace events are applied in
		// seller-ID order so the output is identical at every worker count.
		e.forEachSeller(func(i int) {
			e.out[i], e.errs[i] = nil, nil
			applied := applicants[i]
			if len(applied) == 0 {
				return
			}
			compatible := make([]int, 0, len(applied))
			for _, j := range applied {
				if !m.Graph(i).ConflictsWith(j, snapshot[i]) {
					compatible = append(compatible, j)
				}
			}
			e.out[i], e.errs[i] = e.coalition(i, compatible)
		})
		for i := 0; i < numSellers; i++ {
			applied := applicants[i]
			if len(applied) == 0 {
				continue
			}
			if e.errs[i] != nil {
				return nil, stats, fmt.Errorf("seller %d transfer coalition: %w", i, e.errs[i])
			}
			selected := e.out[i]
			granted := make(map[int]struct{}, len(selected))
			for _, j := range selected {
				granted[j] = struct{}{}
				if err := mu.Assign(i, j); err != nil {
					return nil, stats, fmt.Errorf("transferring buyer %d to seller %d: %w", j, i, err)
				}
				e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindTransferAccept, Buyer: j, Seller: i})
			}
			for _, j := range applied {
				if _, ok := granted[j]; ok {
					continue
				}
				e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindTransferReject, Buyer: j, Seller: i})
				if _, dup := inInvite[i][j]; !dup {
					inInvite[i][j] = struct{}{}
					inviteLists[i] = append(inviteLists[i], j)
				}
			}
		}
		e.observeRound("phase_1", round, applicationsMade, roundStart)
		e.endRound(&roundSpan, "phase_1", round, applicationsMade)
	}

	stats.Welfare = matching.Welfare(m, mu)
	return inviteLists, stats, nil
}

// runInvitation executes Stage II Phase 2 (Algorithm 2 lines 18–33), mutating
// mu in place. Each seller first screens her invitation list down to buyers
// compatible with her current coalition — fanned out per seller, since
// screening only reads the frozen post-Phase-1 matching — then each round
// invites her highest-price remaining candidate; a buyer accepts the best
// strictly improving invitation she holds. After an acceptance the seller
// drops the new member's interfering neighbors from her list (Algorithm 2
// line 29).
func (e *engine) runInvitation(mu *matching.Matching, inviteLists [][]int) (StageStats, error) {
	m := e.m
	numSellers := m.M()
	var stats StageStats

	// Screening (Algorithm 2 lines 19–21).
	pending := make([][]int, numSellers)
	e.forEachSeller(func(i int) {
		if i >= len(inviteLists) {
			return
		}
		coalition := mu.Coalition(i)
		for _, j := range inviteLists[i] {
			if mu.SellerOf(j) == i {
				continue // transferred here after the rejection
			}
			if !m.Graph(i).ConflictsWith(j, coalition) {
				pending[i] = append(pending[i], j)
			}
		}
		// Invite in descending price order, ties toward the smaller buyer.
		sort.Slice(pending[i], func(a, b int) bool {
			pa, pb := m.Price(i, pending[i][a]), m.Price(i, pending[i][b])
			if pa != pb {
				return pa > pb
			}
			return pending[i][a] < pending[i][b]
		})
	})
	totalPending := 0
	for i := 0; i < numSellers; i++ {
		totalPending += len(pending[i])
	}

	maxRounds := totalPending + 2
	for round := 1; ; round++ {
		if round > maxRounds {
			return stats, fmt.Errorf("phase 2 exceeded its %d round bound", maxRounds)
		}
		roundStart := e.roundTimer()
		roundSpan := e.startRound()

		// Invitation step: each seller invites her best remaining candidate.
		inviters := make(map[int][]int) // buyer → sellers inviting this round
		invitesMade := 0
		for i := 0; i < numSellers; i++ {
			if len(pending[i]) == 0 {
				continue
			}
			j := pending[i][0]
			pending[i] = pending[i][1:] // removed regardless of outcome (line 31)
			inviters[j] = append(inviters[j], i)
			invitesMade++
			stats.Messages++
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInvite, Buyer: j, Seller: i})
		}
		if invitesMade == 0 {
			break
		}
		stats.Rounds = round

		// Acceptance step: each invited buyer takes the best strictly
		// improving offer that is still interference-free for her.
		buyers := make([]int, 0, len(inviters))
		for j := range inviters {
			buyers = append(buyers, j)
		}
		sort.Ints(buyers)
		for _, j := range buyers {
			best := market.Unmatched
			bestPrice := currentUtility(m, mu, j)
			for _, i := range inviters[j] {
				if m.Price(i, j) <= bestPrice {
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInviteDecline, Buyer: j, Seller: i})
					continue
				}
				if m.Graph(i).ConflictsWith(j, mu.Coalition(i)) {
					// A buyer accepted earlier this round now interferes;
					// the paper's line-29 pruning is applied below, but a
					// same-round race is re-checked here for safety.
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInviteDecline, Buyer: j, Seller: i})
					continue
				}
				best, bestPrice = i, m.Price(i, j)
			}
			if best == market.Unmatched {
				continue
			}
			if err := mu.Assign(best, j); err != nil {
				return stats, fmt.Errorf("inviting buyer %d to seller %d: %w", j, best, err)
			}
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInviteAccept, Buyer: j, Seller: best})
			// Algorithm 2 line 29: drop the new member's interfering
			// neighbors from the accepting seller's list.
			kept := pending[best][:0]
			for _, j2 := range pending[best] {
				if !m.Interferes(best, j, j2) {
					kept = append(kept, j2)
				}
			}
			pending[best] = kept
		}
		e.observeRound("phase_2", round, invitesMade, roundStart)
		e.endRound(&roundSpan, "phase_2", round, invitesMade)
	}

	stats.Welfare = matching.Welfare(m, mu)
	return stats, nil
}
