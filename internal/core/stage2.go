package core

import (
	"fmt"
	"sort"

	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/trace"
)

// utility is buyer j's utility under mu, read from the engine's price rows.
// All matchings this engine handles are interference-free, so it is her
// matched price or zero.
func (e *engine) utility(mu *matching.Matching, j int) float64 {
	i := mu.SellerOf(j)
	if i == market.Unmatched {
		return 0
	}
	return e.rows[i][j]
}

// buyerUtility is matching.BuyerUtilityIn evaluated against the engine's
// price rows: buyer j's matched price if her coalition is interference-free
// around her, else zero. Identical float values and term structure, so
// welfare sums agree bit-for-bit with the market-based computation.
func (e *engine) buyerUtility(mu *matching.Matching, j int) float64 {
	i := mu.SellerOf(j)
	if i == market.Unmatched {
		return 0
	}
	// j's own bit is never in her adjacency row (no self-loops), so the
	// word-parallel intersection needs no j2 != j exclusion.
	if graph.AndAny(e.m.Graph(i).Row(j), mu.Members(i)) {
		return 0
	}
	return e.rows[i][j]
}

// welfare is matching.Welfare against the engine's rows: the sum over buyers
// in ascending ID order of buyerUtility. The ascending order is load-bearing
// — it is the float accumulation order the package's golden welfare values
// were recorded under.
func (e *engine) welfare(mu *matching.Matching) float64 {
	total := 0.0
	for j := 0; j < mu.N(); j++ {
		total += e.buyerUtility(mu, j)
	}
	return total
}

// stage2State pools every per-run Stage II buffer. A fresh engine (one run)
// allocates it once; the persistent incremental engine reuses it across
// steps, which removes all steady-state allocation from the churn hot path.
// All slices are sized to the market's seller/buyer counts, which are fixed
// for an engine's lifetime.
type stage2State struct {
	prefOrder   [][]int      // per-buyer descending preference order for this run
	next        []int        // per-buyer cursor into prefOrder
	applicants  [][]int      // per-seller transfer applicants this round
	snapMask    []graph.Bits // per-seller coalition screening mask, lazily allocated, overwritten wholesale per use
	compat      [][]int      // per-seller compatible-applicant buffer
	inviteLists [][]int      // R_i accumulated across Phase 1, in arrival order
	inInvite    []graph.Bits // per-seller dedup for inviteLists, lazily allocated
	granted     graph.Bits   // merge-loop scratch over buyers, kept clear between uses
	pending     [][]int      // Phase 2 per-seller invitation queues
	invBuyers   []int        // Phase 2: buyers invited this round
	invSellers  [][]int      // Phase 2: per-buyer inviting sellers this round
}

// stage2 returns the engine's pooled Stage II state, allocating it on first
// use.
func (e *engine) stage2() *stage2State {
	if e.s2 != nil {
		return e.s2
	}
	numSellers, numBuyers := e.m.M(), e.m.N()
	e.s2 = &stage2State{
		prefOrder:   make([][]int, numBuyers),
		next:        make([]int, numBuyers),
		applicants:  make([][]int, numSellers),
		snapMask:    make([]graph.Bits, numSellers),
		compat:      make([][]int, numSellers),
		inviteLists: make([][]int, numSellers),
		inInvite:    make([]graph.Bits, numSellers),
		granted:     graph.NewBits(numBuyers),
		pending:     make([][]int, numSellers),
		invSellers:  make([][]int, numBuyers),
	}
	return e.s2
}

// sellerMask returns seller i's screening mask, allocating it the first time
// the seller needs one. Every use overwrites it wholesale (Copy), so no
// clearing discipline is needed. Safe from the seller fan-out: slot i is
// seller-i-private state.
func (s2 *stage2State) sellerMask(i, numBuyers int) graph.Bits {
	if s2.snapMask[i] == nil {
		s2.snapMask[i] = graph.NewBits(numBuyers)
	}
	return s2.snapMask[i]
}

// conflictsWithCoalition reports whether buyer j interferes on channel i with
// any current member of µ(i) — one AND-any sweep of j's adjacency row against
// the coalition bitset, equivalent to g.ConflictsWith(j, mu.Coalition(i)).
func (e *engine) conflictsWithCoalition(i, j int, mu *matching.Matching) bool {
	return graph.AndAny(e.m.Graph(i).Row(j), mu.Members(i))
}

// runTransfer executes Stage II Phase 1 (Algorithm 2 lines 4–17), mutating mu
// in place. It returns each seller's accumulated invitation list R_i: the
// transfer applicants she rejected, in arrival order without duplicates. The
// returned slices alias the engine's pooled state and are valid until the
// next runTransfer on the same engine.
//
// Semantics fixed by the paper's worked example (Fig. 2): within a round all
// sellers decide against the coalition snapshot taken at the start of the
// round, then all granted transfers take effect simultaneously — seller c
// rejects buyer 5 against µ(c) = {1,2} even though buyer 2's simultaneous
// transfer to seller a is granted in the same round. The snapshot semantics
// are also what makes the per-seller fan-out safe: decisions read only the
// snapshot, and grants are applied in seller-ID order afterwards.
func (e *engine) runTransfer(mu *matching.Matching) ([][]int, StageStats, error) {
	numSellers, numBuyers := e.m.M(), e.m.N()
	var stats StageStats
	s2 := e.stage2()

	// T_j is consumed through a cursor into the buyer's descending
	// preference order. Entries no better than the buyer's current utility
	// are skipped dynamically: applications go out best-first, so once one
	// is granted every remaining entry is worse than the new match.
	//
	// On the full path the order comes from the engine's own market. On the
	// incremental path it is the precomputed base-market order (nil for
	// inactive buyers): entries the effective rows zero out — offline
	// channels — fail the strict-improvement test below and are consumed
	// within the same scan, so the application sequence is identical to the
	// one an effective-market order would produce.
	for j := 0; j < numBuyers; j++ {
		if e.basePref != nil {
			s2.prefOrder[j] = e.basePref[j]
		} else {
			s2.prefOrder[j] = e.m.BuyerPrefOrder(j)
		}
		s2.next[j] = 0
	}
	prefOrder, next := s2.prefOrder, s2.next

	for i := 0; i < numSellers; i++ {
		s2.inviteLists[i] = s2.inviteLists[i][:0]
		if s2.inInvite[i] != nil {
			s2.inInvite[i].Reset()
		}
	}
	applicants := s2.applicants

	// Each buyer applies at most M times, so M rounds suffice (Prop. 2).
	maxRounds := numSellers + 2
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, stats, fmt.Errorf("phase 1 exceeded its O(M)=%d round bound", maxRounds)
		}
		roundStart := e.roundTimer()
		roundSpan := e.startRound()

		// Application step: one application per buyer with a strictly
		// better seller left to try.
		applicationsMade := 0
		for i := range applicants {
			applicants[i] = applicants[i][:0]
		}
		for j := 0; j < numBuyers; j++ {
			cur := e.utility(mu, j)
			target := market.Unmatched
			for next[j] < len(prefOrder[j]) {
				i := prefOrder[j][next[j]]
				next[j]++
				if e.rows[i][j] > cur && i != mu.SellerOf(j) {
					target = i
					break
				}
			}
			if target == market.Unmatched {
				continue
			}
			applicants[target] = append(applicants[target], j)
			applicationsMade++
			stats.Messages++
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindTransferApply, Buyer: j, Seller: target})
		}
		if applicationsMade == 0 {
			break
		}
		stats.Rounds = round

		// Snapshot the coalitions of sellers with applicants before any
		// seller decides: one word-parallel copy of µ(i)'s member bitset
		// into the seller's screening mask.
		for i := 0; i < numSellers; i++ {
			if len(applicants[i]) == 0 {
				continue
			}
			s2.sellerMask(i, numBuyers).Copy(mu.Members(i))
		}

		// Decision step: sellers admit the best independent subset of
		// applicants compatible with their (unevictable) snapshot coalition,
		// fanned out per seller; grants and trace events are applied in
		// seller-ID order so the output is identical at every worker count.
		e.forEachSeller(func(i int) {
			e.out[i], e.errs[i] = nil, nil
			applied := applicants[i]
			if len(applied) == 0 {
				return
			}
			g := e.m.Graph(i)
			mask := s2.snapMask[i] // populated in the sequential snapshot pass
			compat := s2.compat[i][:0]
			for _, j := range applied {
				if !g.ConflictsMask(j, mask) {
					compat = append(compat, j)
				}
			}
			s2.compat[i] = compat
			e.out[i], e.errs[i] = e.coalition(i, compat)
		})
		for i := 0; i < numSellers; i++ {
			applied := applicants[i]
			if len(applied) == 0 {
				continue
			}
			if e.errs[i] != nil {
				return nil, stats, fmt.Errorf("seller %d transfer coalition: %w", i, e.errs[i])
			}
			selected := e.out[i]
			for _, j := range selected {
				s2.granted.Set(j)
				if err := mu.Assign(i, j); err != nil {
					return nil, stats, fmt.Errorf("transferring buyer %d to seller %d: %w", j, i, err)
				}
				e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindTransferAccept, Buyer: j, Seller: i})
			}
			for _, j := range applied {
				if s2.granted.Get(j) {
					continue
				}
				e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindTransferReject, Buyer: j, Seller: i})
				if s2.inInvite[i] == nil {
					s2.inInvite[i] = graph.NewBits(numBuyers)
				}
				if !s2.inInvite[i].Get(j) {
					s2.inInvite[i].Set(j)
					s2.inviteLists[i] = append(s2.inviteLists[i], j)
				}
			}
			for _, j := range selected {
				s2.granted.Clear(j)
			}
		}
		e.observeRound("phase_1", round, applicationsMade, roundStart)
		e.endRound(&roundSpan, "phase_1", round, applicationsMade)
	}

	stats.Welfare = e.welfare(mu)
	return s2.inviteLists, stats, nil
}

// runInvitation executes Stage II Phase 2 (Algorithm 2 lines 18–33), mutating
// mu in place. Each seller first screens her invitation list down to buyers
// compatible with her current coalition — fanned out per seller, since
// screening only reads the frozen post-Phase-1 matching — then each round
// invites her highest-price remaining candidate; a buyer accepts the best
// strictly improving invitation she holds. After an acceptance the seller
// drops the new member's interfering neighbors from her list (Algorithm 2
// line 29).
func (e *engine) runInvitation(mu *matching.Matching, inviteLists [][]int) (StageStats, error) {
	numSellers, numBuyers := e.m.M(), e.m.N()
	var stats StageStats
	s2 := e.stage2()

	// Screening (Algorithm 2 lines 19–21).
	pending := s2.pending
	e.forEachSeller(func(i int) {
		pending[i] = pending[i][:0]
		if i >= len(inviteLists) || len(inviteLists[i]) == 0 {
			return
		}
		g := e.m.Graph(i)
		mask := s2.sellerMask(i, numBuyers)
		mask.Copy(mu.Members(i))
		for _, j := range inviteLists[i] {
			if mu.SellerOf(j) == i {
				continue // transferred here after the rejection
			}
			if !g.ConflictsMask(j, mask) {
				pending[i] = append(pending[i], j)
			}
		}
		// Invite in descending price order, ties toward the smaller buyer.
		row := e.rows[i]
		sort.Slice(pending[i], func(a, b int) bool {
			pa, pb := row[pending[i][a]], row[pending[i][b]]
			if pa != pb {
				return pa > pb
			}
			return pending[i][a] < pending[i][b]
		})
	})
	totalPending := 0
	for i := 0; i < numSellers; i++ {
		totalPending += len(pending[i])
	}

	maxRounds := totalPending + 2
	for round := 1; ; round++ {
		if round > maxRounds {
			return stats, fmt.Errorf("phase 2 exceeded its %d round bound", maxRounds)
		}
		roundStart := e.roundTimer()
		roundSpan := e.startRound()

		// Invitation step: each seller invites her best remaining candidate.
		invBuyers := s2.invBuyers[:0]
		invitesMade := 0
		for i := 0; i < numSellers; i++ {
			if len(pending[i]) == 0 {
				continue
			}
			j := pending[i][0]
			pending[i] = pending[i][1:] // removed regardless of outcome (line 31)
			if len(s2.invSellers[j]) == 0 {
				invBuyers = append(invBuyers, j)
			}
			s2.invSellers[j] = append(s2.invSellers[j], i)
			invitesMade++
			stats.Messages++
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInvite, Buyer: j, Seller: i})
		}
		if invitesMade == 0 {
			s2.invBuyers = invBuyers
			break
		}
		stats.Rounds = round

		// Acceptance step: each invited buyer takes the best strictly
		// improving offer that is still interference-free for her, in
		// ascending buyer order (as the map-based original sorted its keys).
		sort.Ints(invBuyers)
		for _, j := range invBuyers {
			best := market.Unmatched
			bestPrice := e.utility(mu, j)
			for _, i := range s2.invSellers[j] {
				if e.rows[i][j] <= bestPrice {
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInviteDecline, Buyer: j, Seller: i})
					continue
				}
				if e.conflictsWithCoalition(i, j, mu) {
					// A buyer accepted earlier this round now interferes;
					// the paper's line-29 pruning is applied below, but a
					// same-round race is re-checked here for safety.
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInviteDecline, Buyer: j, Seller: i})
					continue
				}
				best, bestPrice = i, e.rows[i][j]
			}
			if best == market.Unmatched {
				continue
			}
			if err := mu.Assign(best, j); err != nil {
				return stats, fmt.Errorf("inviting buyer %d to seller %d: %w", j, best, err)
			}
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindInviteAccept, Buyer: j, Seller: best})
			// Algorithm 2 line 29: drop the new member's interfering
			// neighbors from the accepting seller's list.
			g := e.m.Graph(best)
			kept := pending[best][:0]
			for _, j2 := range pending[best] {
				if !g.HasEdge(j, j2) {
					kept = append(kept, j2)
				}
			}
			pending[best] = kept
		}
		for _, j := range invBuyers {
			s2.invSellers[j] = s2.invSellers[j][:0]
		}
		s2.invBuyers = invBuyers[:0]
		e.observeRound("phase_2", round, invitesMade, roundStart)
		e.endRound(&roundSpan, "phase_2", round, invitesMade)
	}

	stats.Welfare = e.welfare(mu)
	return stats, nil
}
