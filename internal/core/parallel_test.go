package core_test

import (
	"reflect"
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/mwis"
	"specmatch/internal/trace"
)

// runTraced executes core.Run with a recorder attached and returns the
// result plus the full protocol trace.
func runTraced(t *testing.T, m *market.Market, opts core.Options) (*core.Result, []trace.Event) {
	t.Helper()
	rec := trace.NewRecorder()
	opts.Recorder = rec
	res, err := core.Run(m, opts)
	if err != nil {
		t.Fatalf("core.Run(%+v): %v", opts, err)
	}
	return res, rec.Events()
}

// assertIdenticalRun fails unless got reproduces want exactly: same matching,
// same welfare and counts, same per-stage statistics, same cache counters,
// and the same protocol trace event for event. The trace comparison is the
// strongest form of the determinism guarantee — not just the same fixed
// point, but the same run.
func assertIdenticalRun(t *testing.T, label string,
	wantRes *core.Result, wantTrace []trace.Event,
	gotRes *core.Result, gotTrace []trace.Event) {
	t.Helper()
	if !gotRes.Matching.Equal(wantRes.Matching) {
		t.Errorf("%s: matching differs:\n got %v\nwant %v", label, gotRes.Matching, wantRes.Matching)
	}
	if gotRes.Welfare != wantRes.Welfare || gotRes.Matched != wantRes.Matched {
		t.Errorf("%s: welfare/matched differ: got (%v, %d), want (%v, %d)",
			label, gotRes.Welfare, gotRes.Matched, wantRes.Welfare, wantRes.Matched)
	}
	if gotRes.StageI != wantRes.StageI || gotRes.Phase1 != wantRes.Phase1 || gotRes.Phase2 != wantRes.Phase2 {
		t.Errorf("%s: stage stats differ:\n got %+v %+v %+v\nwant %+v %+v %+v",
			label, gotRes.StageI, gotRes.Phase1, gotRes.Phase2,
			wantRes.StageI, wantRes.Phase1, wantRes.Phase2)
	}
	if gotRes.Cache != wantRes.Cache {
		t.Errorf("%s: cache stats differ: got %+v, want %+v", label, gotRes.Cache, wantRes.Cache)
	}
	if len(gotTrace) != len(wantTrace) {
		t.Errorf("%s: trace length differs: got %d events, want %d", label, len(gotTrace), len(wantTrace))
		return
	}
	if !reflect.DeepEqual(gotTrace, wantTrace) {
		for k := range wantTrace {
			if gotTrace[k] != wantTrace[k] {
				t.Errorf("%s: trace diverges at event %d: got %v, want %v", label, k, gotTrace[k], wantTrace[k])
				return
			}
		}
	}
}

// TestParallelEquivalenceSmall: across many seeds and MWIS algorithms, the
// engine at Workers 2, 4 and 8 replays the sequential engine's full protocol
// trace exactly. Run under -race this is also the data-race check for the
// per-round seller fan-out.
func TestParallelEquivalenceSmall(t *testing.T) {
	algs := []mwis.Algorithm{mwis.GWMIN, mwis.GWMIN2, mwis.GreedyBest}
	for seed := int64(0); seed < 20; seed++ {
		m := generate(t, market.Config{Sellers: 6, Buyers: 40, Seed: seed})
		for _, alg := range algs {
			seqRes, seqTrace := runTraced(t, m, core.Options{MWIS: alg, Workers: 1})
			for _, workers := range []int{2, 4, 8} {
				parRes, parTrace := runTraced(t, m, core.Options{MWIS: alg, Workers: workers})
				assertIdenticalRun(t, alg.String(), seqRes, seqTrace, parRes, parTrace)
			}
		}
	}
}

// TestParallelEquivalenceMultiDemand covers the virtual-expansion paths: the
// trace identity must also hold when physical participants expand to
// multiple virtual sellers and buyers.
func TestParallelEquivalenceMultiDemand(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := generate(t, market.Config{
			Sellers: 4, Buyers: 12,
			SellerChannels: []int{2, 1, 3, 2},
			BuyerDemands:   []int{1, 2, 1, 3, 1, 2, 1, 1, 2, 1, 2, 1},
			Seed:           seed,
		})
		seqRes, seqTrace := runTraced(t, m, core.Options{Workers: 1})
		for _, workers := range []int{2, 4, 8} {
			parRes, parTrace := runTraced(t, m, core.Options{Workers: workers})
			assertIdenticalRun(t, "multi-demand", seqRes, seqTrace, parRes, parTrace)
		}
	}
}

// TestParallelEquivalenceFig7Scale replays the trace identity at the paper's
// largest evaluation scale (Fig. 7b/8b: M = 16, N = 500), where rounds are
// deep enough for scheduling differences to surface if the merge order were
// ever wrong.
func TestParallelEquivalenceFig7Scale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping Fig. 7-scale equivalence in -short mode")
	}
	for seed := int64(1); seed <= 3; seed++ {
		m := generate(t, market.Config{Sellers: 16, Buyers: 500, Seed: seed})
		seqRes, seqTrace := runTraced(t, m, core.Options{Workers: 1})
		for _, workers := range []int{4, 8} {
			parRes, parTrace := runTraced(t, m, core.Options{Workers: workers})
			assertIdenticalRun(t, "fig7b", seqRes, seqTrace, parRes, parTrace)
		}
	}
}

// TestCoalitionCacheEquivalence: disabling the coalition cache must not
// change the run at all, and on generated markets the enabled cache must
// actually avoid work (the independent-set fast path fires; Stage I's last
// quiet rounds always present singleton or interference-free candidate
// sets).
func TestCoalitionCacheEquivalence(t *testing.T) {
	totalAvoided := 0
	for seed := int64(0); seed < 10; seed++ {
		m := generate(t, market.Config{Sellers: 8, Buyers: 80, Seed: seed})
		onRes, onTrace := runTraced(t, m, core.Options{Workers: 1})
		offRes, offTrace := runTraced(t, m, core.Options{Workers: 1, DisableCoalitionCache: true})
		if offRes.Cache != (core.CacheStats{}) {
			t.Errorf("seed %d: disabled cache reports stats %+v", seed, offRes.Cache)
		}
		// Compare everything except the cache counters, which necessarily
		// differ between the two configurations.
		offRes.Cache = onRes.Cache
		assertIdenticalRun(t, "cache on/off", onRes, onTrace, offRes, offTrace)
		totalAvoided += onRes.Cache.Hits + onRes.Cache.Independent
	}
	if totalAvoided == 0 {
		t.Error("coalition cache avoided no solves across 10 markets; fast path is dead")
	}
}

// TestStageIRoundGuardMultiDemand locks in the round-guard fix: the Stage I
// bound must be derived from virtual participant counts (total preference
// list length after dummy expansion), not physical ones. This market — one
// physical seller with 6 channels, two physical buyers demanding 5 channels
// each — legitimately needs more Stage I rounds than the physical-count
// bound M_phys*N_phys + 2 = 4 would allow, so the old guard would abort a
// convergent run.
func TestStageIRoundGuardMultiDemand(t *testing.T) {
	const physSellers, physBuyers = 1, 2
	m := generate(t, market.Config{
		Sellers:        physSellers,
		Buyers:         physBuyers,
		SellerChannels: []int{6},
		BuyerDemands:   []int{5, 5},
		Seed:           3,
	})
	if m.M() != 6 || m.N() != 10 {
		t.Fatalf("virtual expansion: got M=%d N=%d, want 6 and 10", m.M(), m.N())
	}
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatalf("multi-demand run aborted: %v", err)
	}
	physicalBound := physSellers*physBuyers + 2
	if res.StageI.Rounds <= physicalBound {
		t.Fatalf("stage I took %d rounds, within the physical-count bound %d; market no longer exercises the guard",
			res.StageI.Rounds, physicalBound)
	}
}
