package core

import (
	"fmt"

	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// Repair runs Stage II (transfer, then invitation) from an arbitrary
// interference-free starting matching, mutating mu in place.
//
// The two-stage algorithm's Stage II never relies on how Stage I produced
// its input — only on the input being interference-free — so the same
// machinery doubles as an incremental repair operator: after buyers arrive
// (unmatched) or depart (unassigned), a Repair pass restores Nash stability
// without restarting deferred acceptance and without evicting any incumbent.
// Package online builds dynamic-market sessions on top of this.
func Repair(m *market.Market, mu *matching.Matching, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if err := mu.Validate(); err != nil {
		return Result{}, fmt.Errorf("core: repair input: %w", err)
	}
	for i := 0; i < m.M(); i++ {
		coalition := mu.Coalition(i)
		if !m.Graph(i).IsIndependent(coalition) {
			return Result{}, fmt.Errorf("core: repair input has interference in coalition %d", i)
		}
	}

	eng := newEngine(m, opts)
	span := opts.Flight.Start(opts.SpanParent, "core.repair")
	defer span.End()
	eng.runCtx = span.Context()
	res := Result{Matching: mu}
	res.StageI.Welfare = matching.Welfare(m, mu)

	var inviteLists [][]int
	if !opts.SkipTransfer {
		var err error
		var phase1 StageStats
		inviteLists, phase1, err = eng.runTransfer(mu)
		if err != nil {
			return Result{}, fmt.Errorf("core: repair transfer: %w", err)
		}
		res.Phase1 = phase1
	}
	res.Phase1.Welfare = matching.Welfare(m, mu)

	if !opts.SkipInvitation {
		phase2, err := eng.runInvitation(mu, inviteLists)
		if err != nil {
			return Result{}, fmt.Errorf("core: repair invitation: %w", err)
		}
		res.Phase2 = phase2
	}
	res.Phase2.Welfare = matching.Welfare(m, mu)

	res.Welfare = res.Phase2.Welfare
	res.Matched = mu.MatchedCount()
	res.Cache = eng.cacheStats()
	eng.publish(&res, eng.solves.Load())
	if span.Active() {
		span.Annotate(fmt.Sprintf("rounds=%d matched=%d welfare=%.6g", res.TotalRounds(), res.Matched, res.Welfare))
	}
	return res, nil
}
