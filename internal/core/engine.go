package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/mwis"
	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

// engine holds the per-run state shared by both stages: the materialized
// price rows, one MWIS solver (reusable scratch buffers) per seller, the
// per-seller incremental coalition caches, and the bounded worker pool for
// the per-round seller fan-out.
//
// Concurrency contract: within a round, seller i's coalition decision reads
// only the round's immutable inputs (the proposal batch, the coalition
// snapshot, the market) plus seller-i-private state (her solver, cache, and
// result slot), so decisions fan out freely over Options.Workers goroutines.
// All matching mutations and trace events are applied by the caller in
// seller-ID order afterwards, which makes the output bit-identical to the
// sequential engine at every worker count.
type engine struct {
	m    *market.Market
	opts Options
	rows [][]float64

	// basePref, when non-nil, overrides the per-buyer preference orders used
	// by runTransfer: entry j is buyer j's descending preference order over
	// the *base* market, or nil when the buyer is inactive. The incremental
	// engine owns and maintains the slice; the full path leaves it nil and
	// derives orders from its own (effective) market.
	basePref [][]int

	// s2 pools the Stage II buffers. Allocated on first use; the persistent
	// incremental engine reuses it across steps.
	s2 *stage2State

	solvers []mwis.Solver
	caches  []coalitionCache // nil when Options.DisableCoalitionCache
	out     [][]int          // per-seller decision slot for the current round
	errs    []error          // per-seller error slot for the current round

	solves    atomic.Int64 // MWIS solves actually executed (atomic: fan-out)
	evictions int64        // Stage I evictions (merged in seller-ID order)
	met       *coreMetrics // nil when observability is off

	// fl and the two span contexts drive causal tracing. runCtx parents the
	// per-round spans; roundCtx parents the per-seller core.solve spans and is
	// written by the round loop's sequential section before the seller
	// fan-out, so the worker goroutines read it race-free (the go statement
	// and wg.Wait() order the accesses).
	fl       *trace.Flight
	runCtx   trace.SpanContext
	roundCtx trace.SpanContext
}

// coreMetrics holds the engine's observability handles. It exists only when
// Options.Metrics or Options.Events is set; a nil *coreMetrics keeps the
// disabled path to a single pointer check per round.
type coreMetrics struct {
	reg    *obs.Registry
	events *obs.Sink
	rounds *obs.Histogram // core.round_seconds
}

// roundTimer starts timing one engine round; zero when observability is off.
func (e *engine) roundTimer() time.Time {
	if e.met == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeRound records one round's wall time and, when the event sink is
// enabled, a structured round summary. Called from the sequential section
// of each round loop.
func (e *engine) observeRound(stage string, round, messages int, start time.Time) {
	if e.met == nil {
		return
	}
	d := time.Since(start)
	e.met.rounds.Observe(d.Seconds())
	if e.met.events.Enabled() {
		e.met.events.Emit(obs.Event{
			Slot: round,
			Kind: "core.round",
			Note: fmt.Sprintf("%s messages=%d dur=%s", stage, messages, d),
		})
	}
}

// publish flushes one run's aggregate counters onto the registry. solves is
// the run's own MWIS solve count — for a fresh engine that is the cumulative
// e.solves, but the persistent incremental engine passes the per-step delta
// so registry totals stay additive. The per-run values are invariant under
// the worker schedule, so so are the registry totals.
func (e *engine) publish(res *Result, solves int64) {
	if e.met == nil || e.met.reg == nil {
		return
	}
	reg := e.met.reg
	reg.Counter("core.runs").Inc()
	reg.Counter("core.rounds.stage_i").Add(int64(res.StageI.Rounds))
	reg.Counter("core.rounds.phase_1").Add(int64(res.Phase1.Rounds))
	reg.Counter("core.rounds.phase_2").Add(int64(res.Phase2.Rounds))
	reg.Counter("core.messages.stage_i").Add(int64(res.StageI.Messages))
	reg.Counter("core.messages.phase_1").Add(int64(res.Phase1.Messages))
	reg.Counter("core.messages.phase_2").Add(int64(res.Phase2.Messages))
	reg.Counter("core.mwis.solves").Add(solves)
	reg.Counter("core.cache.hits").Add(int64(res.Cache.Hits))
	reg.Counter("core.cache.independent").Add(int64(res.Cache.Independent))
	reg.Counter("core.cache.misses").Add(int64(res.Cache.Misses))
	reg.Counter("core.evictions").Add(e.evictions)
	reg.Counter("core.invitations").Add(int64(res.Phase2.Messages))
}

func newEngine(m *market.Market, opts Options) *engine {
	numSellers := m.M()
	e := &engine{
		m:       m,
		opts:    opts,
		rows:    priceRows(m),
		solvers: make([]mwis.Solver, numSellers),
		out:     make([][]int, numSellers),
		errs:    make([]error, numSellers),
	}
	if !opts.DisableCoalitionCache {
		e.caches = make([]coalitionCache, numSellers)
	}
	e.fl = opts.Flight
	// Stand-alone entry points (RunStageI, the stage-II helpers) have no run
	// root; parenting their rounds on SpanParent keeps them in one trace.
	e.runCtx = opts.SpanParent
	if opts.Metrics != nil || opts.Events.Enabled() {
		e.met = &coreMetrics{
			reg:    opts.Metrics,
			events: opts.Events,
			rounds: opts.Metrics.Histogram("core.round_seconds", obs.TimeBuckets()),
		}
	}
	return e
}

// startRound opens one core.round span and points roundCtx at it so the
// round's coalition decisions parent correctly. Must be called from the
// sequential section of a round loop, before the seller fan-out.
func (e *engine) startRound() trace.SpanHandle {
	span := e.fl.Start(e.runCtx, "core.round")
	e.roundCtx = span.Context()
	return span
}

// endRound annotates and closes one round span. The terminating probe round
// (no messages made) never reaches here, so its span is silently discarded —
// un-Ended spans are never recorded.
func (e *engine) endRound(span *trace.SpanHandle, stage string, round, messages int) {
	if span.Active() {
		span.Annotate("stage=" + stage + " round=" + itoa(round) + " messages=" + itoa(messages))
	}
	span.End()
}

// forEachSeller runs fn(i) for every seller in [0, M), fanning the calls out
// over at most Options.Workers goroutines. fn must confine itself to
// seller-i state per the engine's concurrency contract; callers merge the
// per-seller results in seller-ID order afterwards, so the schedule the pool
// happens to pick never affects the output.
func (e *engine) forEachSeller(fn func(i int)) {
	numSellers := e.m.M()
	workers := e.opts.Workers
	if workers > numSellers {
		workers = numSellers
	}
	if workers <= 1 {
		for i := 0; i < numSellers; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= numSellers {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// coalition returns seller i's most-preferred coalition among the candidate
// buyers: the MWIS of the candidates on her channel's interference graph
// weighted by her price row. With the cache enabled it first canonicalizes
// the candidate set and skips the solve when the set was already decided
// this run (memo hit) or is pairwise interference-free (every solver
// provably returns the whole set). Returned slices may be shared with the
// cache and with earlier callers; coalition slices are never mutated.
//
// Every decision — including cache hits — records a core.solve span under the
// current round, annotated with the seller, candidate count, and how the
// decision was reached (src=solve|hit|independent|empty). Safe from the
// seller fan-out: Flight is concurrency-safe and roundCtx is fixed for the
// round.
func (e *engine) coalition(i int, candidates []int) ([]int, error) {
	span := e.fl.Start(e.roundCtx, "core.solve")
	sel, src, err := e.decideCoalition(i, candidates)
	if span.Active() {
		span.Annotate("seller=" + itoa(i) + " candidates=" + itoa(len(candidates)) + " src=" + src)
		if err != nil {
			span.Annotate("err=1")
		}
	}
	span.End()
	return sel, err
}

// itoa is strconv.Itoa under a name short enough for span-attr call sites.
func itoa(v int) string { return strconv.Itoa(v) }

func (e *engine) decideCoalition(i int, candidates []int) ([]int, string, error) {
	if e.caches == nil {
		e.solves.Add(1)
		sel, err := e.solvers[i].Solve(e.opts.MWIS, e.m.Graph(i), e.rows[i], candidates)
		return sel, "solve", err
	}
	c := &e.caches[i]
	g := e.m.Graph(i)
	canon, err := c.canonicalize(g, e.rows[i], candidates)
	if err != nil {
		return nil, "", err
	}
	if len(canon) == 0 {
		return nil, "empty", nil
	}
	key := string(c.key)
	if sel, ok := c.entries[key]; ok {
		c.hits++
		return sel, "hit", nil
	}
	var sel []int
	src := "solve"
	if c.isIndependent(g, canon) {
		// Fast path: a pairwise interference-free candidate set with
		// positive weights is its own maximum-weight independent set, and
		// every solver in package mwis returns exactly that set (GWMIN/
		// GWMIN2 select every vertex since selections delete no candidates,
		// GWMAX finds the induced subgraph already edgeless, Exact takes
		// everything), sorted ascending — which canon already is.
		c.independent++
		src = "independent"
		sel = append([]int(nil), canon...)
	} else {
		c.misses++
		e.solves.Add(1)
		sel, err = e.solvers[i].Solve(e.opts.MWIS, g, e.rows[i], canon)
		if err != nil {
			return nil, "", err
		}
	}
	if c.entries == nil || len(c.entries) >= maxCoalitionCacheEntries {
		c.entries = make(map[string][]int)
	}
	c.entries[key] = sel
	return sel, src, nil
}

// cacheStats sums the per-seller counters. Per-seller counts are invariant
// under the worker schedule, so the totals are too.
func (e *engine) cacheStats() CacheStats {
	var cs CacheStats
	for i := range e.caches {
		cs.Hits += e.caches[i].hits
		cs.Independent += e.caches[i].independent
		cs.Misses += e.caches[i].misses
	}
	return cs
}

// maxCoalitionCacheEntries bounds one seller's memo. A fresh per-run engine
// never comes close; the bound exists for the persistent incremental engine,
// whose memo accumulates across a session's whole lifetime. When full the
// memo is simply dropped and restarts empty — the only cost is re-solving
// sets already decided, never a wrong coalition.
const maxCoalitionCacheEntries = 1 << 14

// coalitionCache memoizes one seller's coalition decisions, keyed on the
// canonical candidate buyer set. Every input other than the candidate set —
// the channel's interference graph, the price row, the MWIS algorithm — is
// fixed for a seller within a run, and every solver is deterministic, so
// equal candidate sets always yield equal coalitions. Entries are never
// invalidated within a run for the same reason — and this extends across
// the steps of an incremental session, where the rows handed to the solver
// are always the base prices filtered to active buyers and canonicalize
// drops zero-weight (inactive) candidates, so a canonical set pins the
// decision regardless of which step produced it. The one exception is
// mobility: a Move event rewires a channel's interference graph, which is
// part of the decision a memoized set pins, so the incremental engine drops
// the rewired channel's whole memo (Churn.Rewired) — drop, never patch,
// matching the capacity policy below.
type coalitionCache struct {
	entries map[string][]int
	sorted  []int      // scratch: canonical candidate set
	key     []byte     // scratch: delta-varint encoding of sorted
	mask    graph.Bits // scratch: membership mask for the independence test

	hits, independent, misses int
}

// canonicalize filters the candidates to positive-weight vertices, sorts and
// deduplicates them (mirroring the solvers' own cleaning, so the cache key
// identifies the decision exactly), and builds the lookup key into c.key.
func (c *coalitionCache) canonicalize(g *graph.Graph, weights []float64, candidates []int) ([]int, error) {
	out := c.sorted[:0]
	for _, v := range candidates {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("coalition candidate %d out of range [0,%d)", v, g.N())
		}
		if weights[v] > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	dedup := out[:0]
	for k, v := range out {
		if k == 0 || v != out[k-1] {
			dedup = append(dedup, v)
		}
	}
	c.sorted = dedup
	c.key = c.key[:0]
	prev := 0
	for _, v := range dedup { // delta-encoded: ids are sorted and distinct
		c.key = binary.AppendUvarint(c.key, uint64(v-prev))
		prev = v
	}
	return dedup, nil
}

// isIndependent reports whether no two vertices of set are adjacent in g —
// one AND-any word sweep per member against the cache's membership mask.
func (c *coalitionCache) isIndependent(g *graph.Graph, set []int) bool {
	if len(c.mask) < g.Words() {
		c.mask = make(graph.Bits, g.Words())
	}
	for _, v := range set {
		c.mask.Set(v)
	}
	independent := g.IsIndependentMask(set, c.mask)
	for _, v := range set {
		c.mask.Clear(v)
	}
	return independent
}
