package core_test

import (
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/mwis"
	"specmatch/internal/stability"
)

// FuzzRun drives the full two-stage engine over fuzzer-chosen market shapes
// and checks the §III-C guarantees on every output:
//
//   - the matching is valid and interference-free (Prop. 1's invariant),
//   - individually rational (Prop. 3),
//   - Nash stable (Prop. 4) — on single-demand markets only: under virtual
//     expansion the one-shot Phase 2 screening can leave a residual
//     deviation when a coalition slot opens late (a member departs via an
//     invitation elsewhere after the seller already screened her list), and
//     the fuzzer finds such multi-demand counterexamples (e.g. seed -378,
//     M=6 physical sellers with 1-2 channels, N=33 buyers with 1-2 demands,
//     GWMIN2), reproducibly and also under the pre-refactor sequential
//     engine. The repo's deterministic tests assert Prop. 4 on the
//     single-demand generator, matching the paper's evaluation setup.
//
// It also checks this PR's engineering guarantee: the parallel engine
// (Workers: 8) and the cache-disabled engine produce exactly the run of the
// sequential default — same matching, same welfare, same per-stage
// statistics.
func FuzzRun(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(10), uint8(0), uint8(0))
	f.Add(int64(7), uint8(5), uint8(25), uint8(1), uint8(0))
	f.Add(int64(42), uint8(2), uint8(8), uint8(4), uint8(1))
	f.Add(int64(-9), uint8(6), uint8(39), uint8(2), uint8(2))
	f.Add(int64(1234), uint8(1), uint8(12), uint8(3), uint8(3))

	f.Fuzz(func(t *testing.T, seed int64, sellers, buyers, algPick, demandPick uint8) {
		numSellers := 1 + int(sellers)%6
		numBuyers := 1 + int(buyers)%40

		// The exact solver is exponential; only allow it on tiny markets.
		algs := []mwis.Algorithm{mwis.GWMIN, mwis.GWMIN2, mwis.GWMAX, mwis.GreedyBest}
		if numBuyers <= 12 {
			algs = append(algs, mwis.Exact)
		}
		alg := algs[int(algPick)%len(algs)]

		cfg := market.Config{Sellers: numSellers, Buyers: numBuyers, Seed: seed}
		// Exercise virtual expansion: multi-channel sellers / multi-demand
		// buyers stress the Stage I round guard and the dummy-market paths.
		switch demandPick % 4 {
		case 1:
			cfg.SellerChannels = make([]int, numSellers)
			for i := range cfg.SellerChannels {
				cfg.SellerChannels[i] = 1 + (i+int(demandPick))%3
			}
		case 2:
			cfg.BuyerDemands = make([]int, numBuyers)
			for j := range cfg.BuyerDemands {
				cfg.BuyerDemands[j] = 1 + (j+int(demandPick))%3
			}
		case 3:
			cfg.SellerChannels = make([]int, numSellers)
			cfg.BuyerDemands = make([]int, numBuyers)
			for i := range cfg.SellerChannels {
				cfg.SellerChannels[i] = 1 + i%2
			}
			for j := range cfg.BuyerDemands {
				cfg.BuyerDemands[j] = 1 + j%2
			}
		}
		m, err := market.Generate(cfg)
		if err != nil {
			t.Fatalf("generate %+v: %v", cfg, err)
		}

		ref, err := core.Run(m, core.Options{MWIS: alg, Workers: 1})
		if err != nil {
			t.Fatalf("sequential run: %v", err)
		}

		// §III-C invariants on the reference output.
		if err := ref.Matching.Validate(); err != nil {
			t.Errorf("invalid matching: %v", err)
		}
		if v := stability.CheckInterferenceFree(m, ref.Matching); len(v) > 0 {
			t.Errorf("interference violations: %v", v)
		}
		if v := stability.CheckIndividualRational(m, ref.Matching); len(v) > 0 {
			t.Errorf("IR violations (Prop. 3): %v", v)
		}
		if demandPick%4 == 0 { // single-demand market: Prop. 4 applies
			if v := stability.CheckNashStable(m, ref.Matching); len(v) > 0 {
				t.Errorf("Nash deviations (Prop. 4): %v", v)
			}
		}

		// Engine-configuration identity: parallel and cache-disabled runs
		// must reproduce the sequential run exactly.
		for _, opts := range []core.Options{
			{MWIS: alg, Workers: 8},
			{MWIS: alg, Workers: 1, DisableCoalitionCache: true},
		} {
			got, err := core.Run(m, opts)
			if err != nil {
				t.Fatalf("run %+v: %v", opts, err)
			}
			if !got.Matching.Equal(ref.Matching) {
				t.Errorf("matching differs under %+v:\n got %v\nwant %v", opts, got.Matching, ref.Matching)
			}
			if got.Welfare != ref.Welfare || got.Matched != ref.Matched {
				t.Errorf("welfare/matched differ under %+v: got (%v, %d), want (%v, %d)",
					opts, got.Welfare, got.Matched, ref.Welfare, ref.Matched)
			}
			if got.StageI != ref.StageI || got.Phase1 != ref.Phase1 || got.Phase2 != ref.Phase2 {
				t.Errorf("stage stats differ under %+v:\n got %+v %+v %+v\nwant %+v %+v %+v",
					opts, got.StageI, got.Phase1, got.Phase2, ref.StageI, ref.Phase1, ref.Phase2)
			}
			if opts.Workers == 8 && got.Cache != ref.Cache {
				// The cache counters are schedule-invariant by construction.
				t.Errorf("cache stats differ under %+v: got %+v, want %+v", opts, got.Cache, ref.Cache)
			}
		}
	})
}
