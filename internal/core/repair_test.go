package core_test

import (
	"testing"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/stability"
)

// TestRepairAfterStageIEqualsFullRun: running Repair on Stage I's output is
// exactly the full two-stage algorithm.
func TestRepairAfterStageIEqualsFullRun(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := generate(t, market.Config{Sellers: 4, Buyers: 25, Seed: seed})
		mu, _, err := core.RunStageI(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		repaired, err := core.Repair(m, mu, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		full := run(t, m, core.Options{})
		if !mu.Equal(full.Matching) {
			t.Errorf("seed %d: repair-from-stage-I diverges from the full run", seed)
		}
		if repaired.Welfare != full.Welfare {
			t.Errorf("seed %d: welfare %v vs %v", seed, repaired.Welfare, full.Welfare)
		}
	}
}

// TestRepairFromEmptyMatching: Stage II from scratch matches buyers through
// transfers alone and yields a Nash-stable state.
func TestRepairFromEmptyMatching(t *testing.T) {
	m := generate(t, market.Config{Sellers: 4, Buyers: 15, Seed: 3})
	mu := matching.New(m.M(), m.N())
	res, err := core.Repair(m, mu, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched == 0 {
		t.Error("repair from empty matched nobody")
	}
	rep := stability.Check(m, mu)
	if !rep.InterferenceFree || !rep.NashStable {
		t.Errorf("repair-from-empty: %v", rep)
	}
}

// TestRepairRejectsInterferingInput: Stage II's guarantees need an
// interference-free start; a poisoned input must be rejected.
func TestRepairRejectsInterferingInput(t *testing.T) {
	m := generate(t, market.Config{Sellers: 3, Buyers: 20, Seed: 1})
	mu := matching.New(m.M(), m.N())
	// Find an interfering pair on channel 0 and co-locate them.
	found := false
	for a := 0; a < m.N() && !found; a++ {
		for b := a + 1; b < m.N(); b++ {
			if m.Interferes(0, a, b) {
				if err := mu.Assign(0, a); err != nil {
					t.Fatal(err)
				}
				if err := mu.Assign(0, b); err != nil {
					t.Fatal(err)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no interfering pair on channel 0 for this seed")
	}
	if _, err := core.Repair(m, mu, core.Options{}); err == nil {
		t.Error("interfering input should be rejected")
	}
}

// TestRepairNeverLowersUtility: repair is voluntary for everyone already
// matched.
func TestRepairNeverLowersUtility(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := generate(t, market.Config{Sellers: 5, Buyers: 30, Seed: seed})
		full := run(t, m, core.Options{})
		mu := full.Matching.Clone()
		// Perturb: release three buyers.
		for j := 0; j < 3; j++ {
			mu.Unassign(j)
		}
		before := make([]float64, m.N())
		for j := range before {
			before[j] = matching.BuyerUtilityIn(m, mu, j)
		}
		if _, err := core.Repair(m, mu, core.Options{}); err != nil {
			t.Fatal(err)
		}
		for j := range before {
			if after := matching.BuyerUtilityIn(m, mu, j); after < before[j]-1e-12 {
				t.Errorf("seed %d: buyer %d lost utility in repair: %v → %v", seed, j, before[j], after)
			}
		}
	}
}
