// Package core implements the paper's primary contribution: the two-stage
// distributed spectrum matching algorithm (§III-B).
//
//   - Stage I is the adapted deferred acceptance of Algorithm 1: buyers
//     propose in descending utility order; each seller keeps her
//     most-preferred coalition — a maximum-weight independent set of her
//     waiting list plus current proposers on her channel's interference
//     graph — evicting anyone left out.
//   - Stage II Phase 1 is the transfer phase of Algorithm 2: buyers apply
//     once to each seller they strictly prefer to their current match;
//     sellers admit the best independent subset of applicants compatible
//     with their (unevictable) current coalition.
//   - Stage II Phase 2 is the invitation phase: sellers invite
//     previously-rejected, now-compatible buyers in descending price order.
//
// This package is the synchronous, round-driven engine: all buyers and
// sellers advance in lockstep and stages transition globally, which is the
// semantics under which the paper proves convergence (Props. 1–2),
// individual rationality (Prop. 3) and Nash stability (Prop. 4). The
// asynchronous realization with the §IV local transition rules lives in
// internal/agent and is checked against this engine.
package core

import (
	"fmt"
	"runtime"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/mwis"
	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

// Options configures a run of the two-stage algorithm.
type Options struct {
	// MWIS selects the seller-side coalition solver. Zero means mwis.GWMIN,
	// the paper's linear-time greedy.
	MWIS mwis.Algorithm

	// Workers bounds the per-round seller fan-out. Within each Stage I round
	// and each Stage II phase, sellers' coalition decisions depend only on
	// the round's proposal batch and their own state, so the engine solves
	// them on up to Workers goroutines and applies all matching mutations
	// and trace events in seller-ID order afterwards. The output — matching,
	// welfare, per-stage statistics, and the full protocol trace — is
	// bit-identical at every setting. Zero means runtime.GOMAXPROCS(0); one
	// runs fully sequential.
	Workers int

	// DisableCoalitionCache turns off the per-seller incremental coalition
	// machinery (candidate-set memoization and the independent-set fast
	// path). Output is identical either way; the knob exists so benchmarks
	// and ablations can price the MWIS solver's raw hot path.
	DisableCoalitionCache bool

	// SkipTransfer and SkipInvitation disable Stage II Phase 1 / Phase 2 for
	// ablations. The paper's algorithm runs both.
	SkipTransfer   bool
	SkipInvitation bool

	// DisableIncremental forces online sessions onto the full recompute path:
	// every Step rebuilds the effective sub-market and runs core.Repair from
	// scratch instead of stepping the session's persistent Incremental engine.
	// Output is bit-identical either way — the knob exists as an escape hatch
	// and so benchmarks and the differential test harness can price one path
	// against the other.
	DisableIncremental bool

	// Recorder, when non-nil, receives one event per protocol step.
	Recorder *trace.Recorder

	// Metrics, when non-nil, receives engine instrumentation: per-round wall
	// time (core.round_seconds), MWIS solves vs. coalition-cache work
	// avoidance (core.mwis.solves, core.cache.*), evictions, and per-stage
	// round/message counts. Counters are cumulative across runs sharing the
	// registry, so one registry can aggregate a whole experiment. Metric
	// names are catalogued in PROTOCOL.md. Nil disables instrumentation at
	// near-zero cost and never changes behavior.
	Metrics *obs.Registry

	// Events, when non-nil, receives one structured round summary per engine
	// round (kind "core.round"). Nil disables event recording entirely.
	Events *obs.Sink

	// Flight, when non-nil, receives causal spans: core.run (or core.repair)
	// as the run's root, core.round per engine round, and core.solve per
	// seller coalition decision — the span tree that says which seller gated
	// which round. Span names are catalogued in PROTOCOL.md. Nil disables
	// tracing at near-zero cost and never changes behavior.
	Flight *trace.Flight

	// SpanParent parents the run's root span under an enclosing trace (an
	// HTTP request, an online session step). Zero starts a fresh trace.
	SpanParent trace.SpanContext
}

func (o Options) withDefaults() Options {
	if o.MWIS == 0 {
		o.MWIS = mwis.GWMIN
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// StageStats reports one stage or phase of a run. Welfare is the cumulative
// social welfare at the end of the stage (the quantity of Fig. 7); Rounds is
// the stage's own round count (Fig. 8); Messages counts protocol messages
// initiated during the stage.
type StageStats struct {
	Rounds   int     `json:"rounds"`
	Welfare  float64 `json:"welfare"`
	Messages int     `json:"messages"`
}

// CacheStats reports the incremental coalition machinery's work avoidance
// across a run. Hits counts MWIS solves skipped because the seller's
// candidate set was unchanged from an earlier decision (memoized);
// Independent counts solves skipped because the candidate set was pairwise
// interference-free, where every solver provably returns the whole set;
// Misses counts the full MWIS solves that actually ran.
type CacheStats struct {
	Hits        int `json:"hits"`
	Independent int `json:"independent"`
	Misses      int `json:"misses"`
}

// Result is the outcome of a full two-stage run.
type Result struct {
	Matching *matching.Matching `json:"-"`

	StageI StageStats `json:"stage_i"`
	Phase1 StageStats `json:"phase_1"`
	Phase2 StageStats `json:"phase_2"`

	// Welfare is the final social welfare (equals Phase2.Welfare).
	Welfare float64 `json:"welfare"`
	// Matched is the number of matched buyers.
	Matched int `json:"matched"`

	// Cache reports coalition-cache effectiveness (zero when the cache is
	// disabled). Identical at every Options.Workers setting.
	Cache CacheStats `json:"cache"`
}

// TotalRounds returns the end-to-end round count across all stages.
func (r *Result) TotalRounds() int {
	return r.StageI.Rounds + r.Phase1.Rounds + r.Phase2.Rounds
}

// Run executes the full two-stage algorithm on the market.
func Run(m *market.Market, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	eng := newEngine(m, opts)
	span := opts.Flight.Start(opts.SpanParent, "core.run")
	defer span.End()
	eng.runCtx = span.Context()

	mu, stage1, err := eng.runStageI()
	if err != nil {
		return nil, fmt.Errorf("core: stage I: %w", err)
	}
	res := &Result{Matching: mu, StageI: stage1}

	var inviteLists [][]int
	if !opts.SkipTransfer {
		var phase1 StageStats
		inviteLists, phase1, err = eng.runTransfer(mu)
		if err != nil {
			return nil, fmt.Errorf("core: stage II phase 1: %w", err)
		}
		res.Phase1 = phase1
	}
	res.Phase1.Welfare = matching.Welfare(m, mu)

	if !opts.SkipInvitation {
		phase2, err := eng.runInvitation(mu, inviteLists)
		if err != nil {
			return nil, fmt.Errorf("core: stage II phase 2: %w", err)
		}
		res.Phase2 = phase2
	}
	res.Phase2.Welfare = matching.Welfare(m, mu)

	res.Welfare = res.Phase2.Welfare
	res.Matched = mu.MatchedCount()
	res.Cache = eng.cacheStats()
	eng.publish(res, eng.solves.Load())
	if span.Active() {
		span.Annotate(fmt.Sprintf("rounds=%d matched=%d welfare=%.6g", res.TotalRounds(), res.Matched, res.Welfare))
	}
	return res, nil
}
