// Package core implements the paper's primary contribution: the two-stage
// distributed spectrum matching algorithm (§III-B).
//
//   - Stage I is the adapted deferred acceptance of Algorithm 1: buyers
//     propose in descending utility order; each seller keeps her
//     most-preferred coalition — a maximum-weight independent set of her
//     waiting list plus current proposers on her channel's interference
//     graph — evicting anyone left out.
//   - Stage II Phase 1 is the transfer phase of Algorithm 2: buyers apply
//     once to each seller they strictly prefer to their current match;
//     sellers admit the best independent subset of applicants compatible
//     with their (unevictable) current coalition.
//   - Stage II Phase 2 is the invitation phase: sellers invite
//     previously-rejected, now-compatible buyers in descending price order.
//
// This package is the synchronous, round-driven engine: all buyers and
// sellers advance in lockstep and stages transition globally, which is the
// semantics under which the paper proves convergence (Props. 1–2),
// individual rationality (Prop. 3) and Nash stability (Prop. 4). The
// asynchronous realization with the §IV local transition rules lives in
// internal/agent and is checked against this engine.
package core

import (
	"fmt"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/mwis"
	"specmatch/internal/trace"
)

// Options configures a run of the two-stage algorithm.
type Options struct {
	// MWIS selects the seller-side coalition solver. Zero means mwis.GWMIN,
	// the paper's linear-time greedy.
	MWIS mwis.Algorithm

	// SkipTransfer and SkipInvitation disable Stage II Phase 1 / Phase 2 for
	// ablations. The paper's algorithm runs both.
	SkipTransfer   bool
	SkipInvitation bool

	// Recorder, when non-nil, receives one event per protocol step.
	Recorder *trace.Recorder
}

func (o Options) withDefaults() Options {
	if o.MWIS == 0 {
		o.MWIS = mwis.GWMIN
	}
	return o
}

// StageStats reports one stage or phase of a run. Welfare is the cumulative
// social welfare at the end of the stage (the quantity of Fig. 7); Rounds is
// the stage's own round count (Fig. 8); Messages counts protocol messages
// initiated during the stage.
type StageStats struct {
	Rounds   int     `json:"rounds"`
	Welfare  float64 `json:"welfare"`
	Messages int     `json:"messages"`
}

// Result is the outcome of a full two-stage run.
type Result struct {
	Matching *matching.Matching `json:"-"`

	StageI StageStats `json:"stage_i"`
	Phase1 StageStats `json:"phase_1"`
	Phase2 StageStats `json:"phase_2"`

	// Welfare is the final social welfare (equals Phase2.Welfare).
	Welfare float64 `json:"welfare"`
	// Matched is the number of matched buyers.
	Matched int `json:"matched"`
}

// TotalRounds returns the end-to-end round count across all stages.
func (r *Result) TotalRounds() int {
	return r.StageI.Rounds + r.Phase1.Rounds + r.Phase2.Rounds
}

// Run executes the full two-stage algorithm on the market.
func Run(m *market.Market, opts Options) (*Result, error) {
	opts = opts.withDefaults()

	mu, stage1, err := RunStageI(m, opts)
	if err != nil {
		return nil, fmt.Errorf("core: stage I: %w", err)
	}
	res := &Result{Matching: mu, StageI: stage1}

	var inviteLists [][]int
	if !opts.SkipTransfer {
		var phase1 StageStats
		inviteLists, phase1, err = runTransfer(m, mu, opts)
		if err != nil {
			return nil, fmt.Errorf("core: stage II phase 1: %w", err)
		}
		res.Phase1 = phase1
	}
	res.Phase1.Welfare = matching.Welfare(m, mu)

	if !opts.SkipInvitation {
		phase2, err := runInvitation(m, mu, inviteLists, opts)
		if err != nil {
			return nil, fmt.Errorf("core: stage II phase 2: %w", err)
		}
		res.Phase2 = phase2
	}
	res.Phase2.Welfare = matching.Welfare(m, mu)

	res.Welfare = res.Phase2.Welfare
	res.Matched = mu.MatchedCount()
	return res, nil
}
