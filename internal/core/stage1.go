package core

import (
	"fmt"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/trace"
)

// RunStageI executes Algorithm 1 (adapted deferred acceptance) and returns
// the resulting interference-free matching. It is exported separately so
// ablations can measure Stage I alone.
//
// Each round, every unmatched buyer with a non-empty unproposed-seller list
// proposes to her most-preferred remaining seller; every seller that received
// proposals re-forms her waiting list as the most-preferred coalition among
// the old waiting list and the new proposers — a maximum-weight independent
// set on her channel's interference graph — evicting buyers no longer
// selected. The loop ends when no proposal is made, which Prop. 1 bounds at
// O(MN) rounds.
func RunStageI(m *market.Market, opts Options) (*matching.Matching, StageStats, error) {
	return newEngine(m, opts.withDefaults()).runStageI()
}

func (e *engine) runStageI() (*matching.Matching, StageStats, error) {
	m := e.m
	numSellers, numBuyers := m.M(), m.N()
	mu := matching.New(numSellers, numBuyers)

	prefOrder := make([][]int, numBuyers)
	next := make([]int, numBuyers) // cursor into prefOrder[j]: first unproposed seller
	totalProposals := 0
	for j := 0; j < numBuyers; j++ {
		prefOrder[j] = m.BuyerPrefOrder(j)
		totalProposals += len(prefOrder[j])
	}
	waiting := make([][]int, numSellers) // L_i, always independent on G_i
	var stats StageStats

	// Prop. 1 bounds the run by the number of proposals either side can
	// generate: every non-final round consumes at least one preference-list
	// cursor entry and cursors never rewind. The count must come from the
	// *virtual* participants — after dummy expansion a multi-demand physical
	// buyer carries one proposal cursor per demanded channel, so a guard
	// derived from physical counts would trip on markets the algorithm
	// finishes legitimately. The +2 slack turns a logic bug into an error
	// instead of an endless loop.
	maxRounds := totalProposals + 2
	proposers := make([][]int, numSellers) // seller → new proposers, in buyer order
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, stats, fmt.Errorf("stage I exceeded its %d-proposal round bound", maxRounds)
		}
		roundStart := e.roundTimer()
		roundSpan := e.startRound()

		// Proposal step: one proposal per unmatched buyer with options left.
		proposalsMade := 0
		for i := range proposers {
			proposers[i] = proposers[i][:0]
		}
		for j := 0; j < numBuyers; j++ {
			if mu.IsMatched(j) || next[j] >= len(prefOrder[j]) {
				continue
			}
			i := prefOrder[j][next[j]]
			next[j]++
			proposers[i] = append(proposers[i], j)
			proposalsMade++
			stats.Messages++
			e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindPropose, Buyer: j, Seller: i})
		}
		if proposalsMade == 0 {
			break // every unmatched buyer has exhausted her list
		}
		stats.Rounds = round

		// Decision step: sellers form their most-preferred coalitions in
		// parallel against the round's proposal batch; mutations and trace
		// events are then applied in seller-ID order, so the output is
		// identical at every worker count.
		e.forEachSeller(func(i int) {
			e.out[i], e.errs[i] = nil, nil
			newProposers := proposers[i]
			if len(newProposers) == 0 {
				return
			}
			candidates := make([]int, 0, len(waiting[i])+len(newProposers))
			candidates = append(candidates, waiting[i]...)
			candidates = append(candidates, newProposers...)
			e.out[i], e.errs[i] = e.coalition(i, candidates)
		})
		for i := 0; i < numSellers; i++ {
			newProposers := proposers[i]
			if len(newProposers) == 0 {
				continue
			}
			if e.errs[i] != nil {
				return nil, stats, fmt.Errorf("seller %d coalition: %w", i, e.errs[i])
			}
			selected := e.out[i]
			keep := make(map[int]struct{}, len(selected))
			for _, j := range selected {
				keep[j] = struct{}{}
			}
			for _, j := range waiting[i] { // evictions
				if _, ok := keep[j]; !ok {
					mu.Unassign(j)
					e.evictions++
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindEvict, Buyer: j, Seller: i})
				}
			}
			for _, j := range newProposers { // rejections and admissions
				if _, ok := keep[j]; !ok {
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindReject, Buyer: j, Seller: i})
				}
			}
			for _, j := range selected {
				if mu.SellerOf(j) != i {
					if err := mu.Assign(i, j); err != nil {
						return nil, stats, fmt.Errorf("assigning buyer %d to seller %d: %w", j, i, err)
					}
					e.opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindAccept, Buyer: j, Seller: i})
				}
			}
			waiting[i] = selected
		}
		e.observeRound("stage_i", round, proposalsMade, roundStart)
		e.endRound(&roundSpan, "stage_i", round, proposalsMade)
	}

	stats.Welfare = matching.Welfare(m, mu)
	return mu, stats, nil
}

// priceRows materializes the per-channel weight vectors b_{i,·} once per run.
func priceRows(m *market.Market) [][]float64 {
	rows := make([][]float64, m.M())
	for i := range rows {
		row := make([]float64, m.N())
		for j := range row {
			row[j] = m.Price(i, j)
		}
		rows[i] = row
	}
	return rows
}
