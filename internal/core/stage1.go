package core

import (
	"fmt"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/mwis"
	"specmatch/internal/trace"
)

// RunStageI executes Algorithm 1 (adapted deferred acceptance) and returns
// the resulting interference-free matching. It is exported separately so
// ablations can measure Stage I alone.
//
// Each round, every unmatched buyer with a non-empty unproposed-seller list
// proposes to her most-preferred remaining seller; every seller that received
// proposals re-forms her waiting list as the most-preferred coalition among
// the old waiting list and the new proposers — a maximum-weight independent
// set on her channel's interference graph — evicting buyers no longer
// selected. The loop ends when no proposal is made, which Prop. 1 bounds at
// O(MN) rounds.
func RunStageI(m *market.Market, opts Options) (*matching.Matching, StageStats, error) {
	opts = opts.withDefaults()
	numSellers, numBuyers := m.M(), m.N()
	mu := matching.New(numSellers, numBuyers)

	prefOrder := make([][]int, numBuyers)
	next := make([]int, numBuyers) // cursor into prefOrder[j]: first unproposed seller
	for j := 0; j < numBuyers; j++ {
		prefOrder[j] = m.BuyerPrefOrder(j)
	}
	waiting := make([][]int, numSellers) // L_i, always independent on G_i
	rows := priceRows(m)
	var stats StageStats

	// Prop. 1 bounds the run at O(MN) rounds; the +2 guard turns a logic bug
	// into an error instead of an endless loop.
	maxRounds := numSellers*numBuyers + 2
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, stats, fmt.Errorf("stage I exceeded its O(MN)=%d round bound", maxRounds)
		}

		// Proposal step: one proposal per unmatched buyer with options left.
		proposers := make(map[int][]int, numSellers) // seller → new proposers, in buyer order
		for j := 0; j < numBuyers; j++ {
			if mu.IsMatched(j) || next[j] >= len(prefOrder[j]) {
				continue
			}
			i := prefOrder[j][next[j]]
			next[j]++
			proposers[i] = append(proposers[i], j)
			stats.Messages++
			opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindPropose, Buyer: j, Seller: i})
		}
		if len(proposers) == 0 {
			break // every unmatched buyer has exhausted her list
		}
		stats.Rounds = round

		// Decision step: each seller keeps her most-preferred coalition.
		for i := 0; i < numSellers; i++ {
			newProposers := proposers[i]
			if len(newProposers) == 0 {
				continue
			}
			candidates := make([]int, 0, len(waiting[i])+len(newProposers))
			candidates = append(candidates, waiting[i]...)
			candidates = append(candidates, newProposers...)
			selected, err := mwis.Solve(opts.MWIS, m.Graph(i), rows[i], candidates)
			if err != nil {
				return nil, stats, fmt.Errorf("seller %d coalition: %w", i, err)
			}
			keep := make(map[int]struct{}, len(selected))
			for _, j := range selected {
				keep[j] = struct{}{}
			}
			for _, j := range waiting[i] { // evictions
				if _, ok := keep[j]; !ok {
					mu.Unassign(j)
					opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindEvict, Buyer: j, Seller: i})
				}
			}
			for _, j := range newProposers { // rejections and admissions
				if _, ok := keep[j]; !ok {
					opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindReject, Buyer: j, Seller: i})
				}
			}
			for _, j := range selected {
				if mu.SellerOf(j) != i {
					if err := mu.Assign(i, j); err != nil {
						return nil, stats, fmt.Errorf("assigning buyer %d to seller %d: %w", j, i, err)
					}
					opts.Recorder.Record(trace.Event{Round: round, Kind: trace.KindAccept, Buyer: j, Seller: i})
				}
			}
			waiting[i] = selected
		}
	}

	stats.Welfare = matching.Welfare(m, mu)
	return mu, stats, nil
}

// priceRows materializes the per-channel weight vectors b_{i,·} once per run.
func priceRows(m *market.Market) [][]float64 {
	rows := make([][]float64, m.M())
	for i := range rows {
		row := make([]float64, m.N())
		for j := range row {
			row[j] = m.Price(i, j)
		}
		rows[i] = row
	}
	return rows
}
