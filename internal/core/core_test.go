package core_test

import (
	"testing"
	"testing/quick"

	"specmatch/internal/core"
	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/mwis"
	"specmatch/internal/optimal"
	"specmatch/internal/stability"
	"specmatch/internal/trace"
	"specmatch/internal/xrand"
)

func generate(t *testing.T, cfg market.Config) *market.Market {
	t.Helper()
	m, err := market.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m
}

func run(t *testing.T, m *market.Market, opts core.Options) *core.Result {
	t.Helper()
	res, err := core.Run(m, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestWelfareMonotoneAcrossStages: Stage II never decreases welfare, and
// Phase 2 never decreases it further (buyers only move to strictly better
// sellers without evictions).
func TestWelfareMonotoneAcrossStages(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		m := generate(t, market.Config{Sellers: 5, Buyers: 40, Seed: seed})
		res := run(t, m, core.Options{})
		if res.Phase1.Welfare < res.StageI.Welfare-1e-9 {
			t.Errorf("seed %d: Phase 1 decreased welfare %v → %v", seed, res.StageI.Welfare, res.Phase1.Welfare)
		}
		if res.Phase2.Welfare < res.Phase1.Welfare-1e-9 {
			t.Errorf("seed %d: Phase 2 decreased welfare %v → %v", seed, res.Phase1.Welfare, res.Phase2.Welfare)
		}
		if res.Welfare != res.Phase2.Welfare {
			t.Errorf("seed %d: final welfare %v != Phase 2 welfare %v", seed, res.Welfare, res.Phase2.Welfare)
		}
	}
}

// TestRoundBounds checks Props. 1–2: Stage I within O(MN) rounds, Phase 1
// within O(M), and Phase 2 bounded by the invitation-list sizes (≤ N).
func TestRoundBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		m := generate(t, market.Config{Sellers: 6, Buyers: 60, Seed: seed})
		res := run(t, m, core.Options{})
		if res.StageI.Rounds > m.M()*m.N() {
			t.Errorf("seed %d: Stage I rounds %d > MN = %d", seed, res.StageI.Rounds, m.M()*m.N())
		}
		if res.Phase1.Rounds > m.M() {
			t.Errorf("seed %d: Phase 1 rounds %d > M = %d", seed, res.Phase1.Rounds, m.M())
		}
		if res.Phase2.Rounds > m.N() {
			t.Errorf("seed %d: Phase 2 rounds %d > N = %d", seed, res.Phase2.Rounds, m.N())
		}
	}
}

// TestBuyerUtilityNeverDropsInStageII: a buyer's utility after Stage II is at
// least her Stage I utility (transfers and invitations are voluntary and
// eviction-free).
func TestBuyerUtilityNeverDropsInStageII(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		m := generate(t, market.Config{Sellers: 5, Buyers: 30, Seed: seed})
		mu1, _, err := core.RunStageI(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, m, core.Options{})
		for j := 0; j < m.N(); j++ {
			before := matching.BuyerUtilityIn(m, mu1, j)
			after := matching.BuyerUtilityIn(m, res.Matching, j)
			if after < before-1e-12 {
				t.Errorf("seed %d: buyer %d utility dropped %v → %v in Stage II", seed, j, before, after)
			}
		}
	}
}

// TestCompleteInterferenceReducesToOneToOne: with complete interference
// graphs on every channel the problem is classic one-to-one deferred
// acceptance (Prop. 1's worst case): every coalition has exactly one buyer
// and the result is pairwise stable.
func TestCompleteInterferenceReducesToOneToOne(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := xrand.New(seed)
		const numSellers, numBuyers = 5, 5
		prices := make([][]float64, numSellers)
		graphs := make([]*graph.Graph, numSellers)
		for i := range prices {
			row := make([]float64, numBuyers)
			for j := range row {
				row[j] = 0.01 + r.Float64()
			}
			prices[i] = row
			graphs[i] = graph.Complete(numBuyers)
		}
		m, err := market.New(prices, graphs)
		if err != nil {
			t.Fatal(err)
		}
		res := run(t, m, core.Options{})
		for i := 0; i < m.M(); i++ {
			if res.Matching.CoalitionSize(i) > 1 {
				t.Fatalf("seed %d: coalition %d has %d buyers under complete interference", seed, i, res.Matching.CoalitionSize(i))
			}
		}
		rep := stability.Check(m, res.Matching)
		if !rep.NashStable {
			t.Errorf("seed %d: one-to-one reduction not Nash-stable: %v", seed, rep.Nash)
		}
		// In the one-to-one case Nash stability coincides with pairwise
		// stability: any blocking pair is a unilateral deviation since the
		// deviating buyer displaces the seller's single (cheaper) occupant —
		// but under Def. 4 the sacrifice makes the seller strictly better
		// only if the newcomer pays more, which Stage II transfers resolve.
		if !rep.PairwiseStable {
			t.Errorf("seed %d: one-to-one reduction not pairwise stable: %v", seed, rep.Blocking)
		}
	}
}

// TestEmptyInterferenceEveryoneGetsFirstChoice: with no interference at all,
// every buyer is matched to her favorite channel in one round and the result
// is optimal.
func TestEmptyInterferenceEveryoneGetsFirstChoice(t *testing.T) {
	r := xrand.New(5)
	const numSellers, numBuyers = 4, 12
	prices := make([][]float64, numSellers)
	graphs := make([]*graph.Graph, numSellers)
	for i := range prices {
		row := make([]float64, numBuyers)
		for j := range row {
			row[j] = 0.01 + r.Float64()
		}
		prices[i] = row
		graphs[i] = graph.Empty(numBuyers)
	}
	m, err := market.New(prices, graphs)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, core.Options{})
	if res.StageI.Rounds != 1 {
		t.Errorf("Stage I rounds = %d, want 1", res.StageI.Rounds)
	}
	for j := 0; j < numBuyers; j++ {
		want := m.BuyerPrefOrder(j)[0]
		if got := res.Matching.SellerOf(j); got != want {
			t.Errorf("buyer %d matched to %d, want first choice %d", j, got, want)
		}
	}
	_, opt, err := optimal.Solve(m, optimal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare != opt {
		t.Errorf("welfare %v != optimal %v despite no interference", res.Welfare, opt)
	}
}

// TestSingleBuyerSingleSeller smoke-tests the 1×1 market.
func TestSingleBuyerSingleSeller(t *testing.T) {
	m, err := market.New([][]float64{{0.7}}, []*graph.Graph{graph.Empty(1)})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, core.Options{})
	if res.Welfare != 0.7 || res.Matched != 1 {
		t.Errorf("1×1 market: welfare %v matched %d", res.Welfare, res.Matched)
	}
}

// TestAllZeroPrices: nobody proposes, nobody matches, zero rounds.
func TestAllZeroPrices(t *testing.T) {
	m, err := market.New([][]float64{{0, 0, 0}}, []*graph.Graph{graph.Empty(3)})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, core.Options{})
	if res.Matched != 0 || res.Welfare != 0 {
		t.Errorf("zero-price market: matched %d welfare %v", res.Matched, res.Welfare)
	}
	if res.StageI.Rounds != 0 || res.Phase1.Rounds != 0 || res.Phase2.Rounds != 0 {
		t.Errorf("zero-price market should take 0 rounds, got %+v", res)
	}
}

// TestMoreSellersThanBuyers: excess supply leaves channels empty but matches
// every buyer to her favorite feasible channel.
func TestMoreSellersThanBuyers(t *testing.T) {
	m := generate(t, market.Config{Sellers: 10, Buyers: 3, Seed: 2})
	res := run(t, m, core.Options{})
	if res.Matched != 3 {
		t.Errorf("matched %d of 3 buyers with 10 sellers", res.Matched)
	}
	for j := 0; j < 3; j++ {
		// With more channels than buyers and per-buyer dummies absent,
		// every buyer can always find a free channel; Nash stability then
		// requires she holds her maximum-utility channel unless interference
		// blocks it, which the stability checker verifies globally.
		if !res.Matching.IsMatched(j) {
			t.Errorf("buyer %d unmatched", j)
		}
	}
	if devs := stability.CheckNashStable(m, res.Matching); len(devs) != 0 {
		t.Errorf("not Nash-stable: %v", devs)
	}
}

// TestMWISAlgorithmOptions: every MWIS strategy yields a valid, stable
// matching; exact coalition formation never yields lower Stage I welfare
// than the greedy on the same single-seller market.
func TestMWISAlgorithmOptions(t *testing.T) {
	algs := []mwis.Algorithm{mwis.GWMIN, mwis.GWMIN2, mwis.GWMAX, mwis.GreedyBest, mwis.Exact}
	for seed := int64(0); seed < 20; seed++ {
		m := generate(t, market.Config{Sellers: 4, Buyers: 25, Seed: seed})
		for _, alg := range algs {
			res := run(t, m, core.Options{MWIS: alg})
			rep := stability.Check(m, res.Matching)
			if !rep.InterferenceFree || !rep.IndividuallyRational || !rep.NashStable {
				t.Errorf("seed %d alg %v: %v", seed, alg, rep)
			}
		}
	}
}

// TestAblationSkipPhases: skipping Stage II phases must never increase final
// welfare beyond the full algorithm's on the same market... not guaranteed
// in general (transfers are greedy), so assert only the invariants: results
// remain interference-free and IR, and skipping both phases equals Stage I.
func TestAblationSkipPhases(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		m := generate(t, market.Config{Sellers: 5, Buyers: 30, Seed: seed})
		full := run(t, m, core.Options{})
		noP2 := run(t, m, core.Options{SkipInvitation: true})
		noBoth := run(t, m, core.Options{SkipTransfer: true, SkipInvitation: true})

		mu1, s1, err := core.RunStageI(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !noBoth.Matching.Equal(mu1) || noBoth.Welfare != s1.Welfare {
			t.Errorf("seed %d: skipping both phases should equal Stage I", seed)
		}
		if full.Welfare < noP2.Welfare-1e-9 {
			t.Errorf("seed %d: Phase 2 decreased welfare", seed)
		}
		for _, res := range []*core.Result{full, noP2, noBoth} {
			if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
				t.Errorf("seed %d: interference: %v", seed, v)
			}
		}
	}
}

// TestMatchingBidirectionalInvariant: the matching data structure stays
// internally consistent after a full run.
func TestMatchingBidirectionalInvariant(t *testing.T) {
	f := func(seed int64) bool {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 15, Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Run(m, core.Options{})
		if err != nil {
			return false
		}
		return res.Matching.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWelfareWithinOptimal: the distributed result achieves a large fraction
// of the optimum; the paper reports >90% on average. Individual instances
// can dip lower, so assert a 60% floor per instance and 85% on average.
func TestWelfareWithinOptimal(t *testing.T) {
	var ratioSum float64
	const runs = 40
	for seed := int64(0); seed < runs; seed++ {
		m := generate(t, market.Config{Sellers: 4, Buyers: 8, Seed: seed})
		res := run(t, m, core.Options{})
		_, opt, err := optimal.Solve(m, optimal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if opt == 0 {
			t.Fatal("degenerate optimal welfare 0")
		}
		ratio := res.Welfare / opt
		if ratio > 1+1e-9 {
			t.Fatalf("seed %d: distributed welfare %v exceeds optimal %v", seed, res.Welfare, opt)
		}
		if ratio < 0.6 {
			t.Errorf("seed %d: ratio %.3f below 0.6 floor", seed, ratio)
		}
		ratioSum += ratio
	}
	if avg := ratioSum / runs; avg < 0.85 {
		t.Errorf("average ratio %.3f, want ≥ 0.85 (paper reports >0.9)", avg)
	}
}

// TestTotalRounds: the aggregate round count is consistent.
func TestTotalRounds(t *testing.T) {
	m := generate(t, market.Config{Sellers: 4, Buyers: 20, Seed: 3})
	res := run(t, m, core.Options{})
	if got := res.TotalRounds(); got != res.StageI.Rounds+res.Phase1.Rounds+res.Phase2.Rounds {
		t.Errorf("TotalRounds = %d", got)
	}
}

// TestDeterministicRuns: identical markets and options give identical
// results.
func TestDeterministicRuns(t *testing.T) {
	m := generate(t, market.Config{Sellers: 6, Buyers: 50, Seed: 9})
	a := run(t, m, core.Options{})
	b := run(t, m, core.Options{})
	if !a.Matching.Equal(b.Matching) || a.Welfare != b.Welfare || a.TotalRounds() != b.TotalRounds() {
		t.Error("core.Run is not deterministic")
	}
}

// TestMultiDemandMarket: dummy expansion keeps a physical buyer's dummies on
// distinct channels.
func TestMultiDemandMarket(t *testing.T) {
	m := generate(t, market.Config{
		Sellers:      4,
		Buyers:       6,
		BuyerDemands: []int{2, 1, 3, 1, 2, 1},
		Seed:         4,
	})
	res := run(t, m, core.Options{})
	bySellerOwner := make(map[[2]int]bool) // (physical buyer, seller) pairs
	for j := 0; j < m.N(); j++ {
		i := res.Matching.SellerOf(j)
		if i == market.Unmatched {
			continue
		}
		key := [2]int{m.BuyerOwner(j), i}
		if bySellerOwner[key] {
			t.Errorf("physical buyer %d holds channel %d twice", m.BuyerOwner(j), i)
		}
		bySellerOwner[key] = true
	}
	if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
		t.Errorf("interference: %v", v)
	}
}

// TestProtocolTraceVerifies: the synchronous engine's full event log passes
// the trace linter on random markets — no duplicate proposals, no decisions
// without requests, no round regressions.
func TestProtocolTraceVerifies(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m := generate(t, market.Config{Sellers: 4, Buyers: 30, Seed: seed})
		rec := trace.NewRecorder()
		if _, err := core.Run(m, core.Options{Recorder: rec}); err != nil {
			t.Fatal(err)
		}
		if v := trace.Verify(rec.Events(), trace.VerifyOptions{}); len(v) != 0 {
			t.Fatalf("seed %d: protocol violations: %v", seed, v)
		}
	}
}

// TestLargeMarketSoak exercises a market an order of magnitude beyond the
// paper's largest evaluation point; skipped under -short.
func TestLargeMarketSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	m := generate(t, market.Config{Sellers: 32, Buyers: 2000, Seed: 1})
	res := run(t, m, core.Options{})
	if res.Welfare <= 0 {
		t.Fatal("no welfare on the soak market")
	}
	if res.StageI.Rounds > m.M()*m.N() || res.Phase1.Rounds > m.M() {
		t.Fatalf("round bounds violated at scale: %+v", res)
	}
	if v := stability.CheckInterferenceFree(m, res.Matching); len(v) != 0 {
		t.Fatalf("interference at scale: %d violations", len(v))
	}
	if devs := stability.CheckNashStable(m, res.Matching); len(devs) != 0 {
		t.Fatalf("Nash deviations at scale: %d", len(devs))
	}
}
