package transition

import (
	"math"
	"testing"
	"testing/quick"

	"specmatch/internal/xrand"
)

func TestUniform01CDF(t *testing.T) {
	f := Uniform01{}
	tests := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.25, 0.25}, {1, 1}, {2, 1},
	}
	for _, tt := range tests {
		if got := f.CDF(tt.x); got != tt.want {
			t.Errorf("Uniform01.CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestUniformCDF(t *testing.T) {
	f := Uniform{Lo: 2, Hi: 4}
	tests := []struct{ x, want float64 }{
		{1, 0}, {2, 0}, {3, 0.5}, {4, 1}, {5, 1},
	}
	for _, tt := range tests {
		if got := f.CDF(tt.x); got != tt.want {
			t.Errorf("Uniform.CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	deg := Uniform{Lo: 3, Hi: 3}
	if deg.CDF(2.9) != 0 || deg.CDF(3) != 1 {
		t.Error("degenerate Uniform should be a step function")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	e, err := NewEmpirical([]float64{0.5, 0.1, 0.9, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{0, 0}, {0.1, 0.25}, {0.5, 0.75}, {0.9, 1}, {1, 1},
	}
	for _, tt := range tests {
		if got := e.CDF(tt.x); got != tt.want {
			t.Errorf("Empirical.CDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty sample should fail")
	}
}

// TestEmpiricalApproachesUniform: the empirical CDF of a large U[0,1] sample
// tracks the uniform CDF.
func TestEmpiricalApproachesUniform(t *testing.T) {
	r := xrand.New(1)
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	e, err := NewEmpirical(sample)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		if math.Abs(e.CDF(x)-x) > 0.02 {
			t.Errorf("empirical CDF(%v) = %v, want ≈ %v", x, e.CDF(x), x)
		}
	}
}

func TestBinomialPMFSanity(t *testing.T) {
	// C(4,2) 0.5^4 = 6/16.
	if got := binomialPMF(4, 2, 0.5); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("binomialPMF(4,2,0.5) = %v, want 0.375", got)
	}
	if binomialPMF(4, 5, 0.5) != 0 || binomialPMF(4, -1, 0.5) != 0 {
		t.Error("out-of-range x should give 0")
	}
	if binomialPMF(4, 0, 0) != 1 || binomialPMF(4, 4, 1) != 1 {
		t.Error("degenerate p edge cases wrong")
	}
	// PMF sums to 1.
	var sum float64
	for x := 0; x <= 300; x++ {
		sum += binomialPMF(300, x, 1.0/7)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v, want 1", sum)
	}
}

func TestEvictionRiskEdgeCases(t *testing.T) {
	f := Uniform01{}
	if got := EvictionRisk(1, 5, 50, 0, 0.5, f); got != 0 {
		t.Errorf("no outstanding neighbors → risk 0, got %v", got)
	}
	if got := EvictionRisk(51, 5, 50, 3, 0.5, f); got != 0 {
		t.Errorf("past horizon → risk 0, got %v", got)
	}
	if got := EvictionRisk(1, 0, 50, 3, 0.5, f); got != 0 {
		t.Errorf("no channels → risk 0, got %v", got)
	}
	// With price 1 (top of support), no neighbor can outbid: risk 0.
	if got := EvictionRisk(1, 5, 50, 10, 1, f); got != 0 {
		t.Errorf("unbeatable price → risk 0, got %v", got)
	}
	// With price 0, any arriving proposal outbids: risk > 0 and ≤ 1.
	got := EvictionRisk(1, 5, 50, 10, 0, f)
	if got <= 0 || got > 1 {
		t.Errorf("zero price risk = %v, want in (0,1]", got)
	}
}

// TestEvictionRiskDecreasesWithRound reproduces the paper's observation that
// P^k decreases with k: transitioning later is safer.
func TestEvictionRiskDecreasesWithRound(t *testing.T) {
	f := Uniform01{}
	prev := 2.0
	for k := 1; k <= 40; k += 3 {
		risk := EvictionRisk(k, 4, 40, 5, 0.6, f)
		if risk > prev+1e-12 {
			t.Errorf("P^%d = %v increased from %v", k, risk, prev)
		}
		prev = risk
	}
}

// TestEvictionRiskMonotoneInNeighbors: more outstanding interferers, more
// risk.
func TestEvictionRiskMonotoneInNeighbors(t *testing.T) {
	f := Uniform01{}
	prev := -1.0
	for n := 0; n <= 12; n += 2 {
		risk := EvictionRisk(5, 4, 40, n, 0.6, f)
		if risk < prev-1e-12 {
			t.Errorf("risk with n=%d is %v, below %v", n, risk, prev)
		}
		prev = risk
	}
}

// TestEvictionRiskMonotoneInPrice: a higher own price lowers the risk.
func TestEvictionRiskMonotoneInPrice(t *testing.T) {
	f := Uniform01{}
	prev := 2.0
	for _, b := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		risk := EvictionRisk(5, 4, 40, 6, b, f)
		if risk > prev+1e-12 {
			t.Errorf("risk at price %v is %v, above %v", b, risk, prev)
		}
		prev = risk
	}
}

// TestEvictionRiskBoundedProperty: P^k ∈ [0, 1] for arbitrary inputs.
func TestEvictionRiskBoundedProperty(t *testing.T) {
	f := func(kRaw, nRaw uint8, price float64) bool {
		k := int(kRaw%60) + 1
		n := int(nRaw % 40)
		price = math.Mod(math.Abs(price), 1)
		risk := EvictionRisk(k, 5, 60, n, price, Uniform01{})
		return risk >= 0 && risk <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBetterProposalChanceEdgeCases(t *testing.T) {
	f := Uniform01{}
	if got := BetterProposalChance(1, 5, 50, 0, 0.5, 0.5, f); got != 0 {
		t.Errorf("no outstanding buyers → 0, got %v", got)
	}
	// θ = 0: nobody compatible, no better proposal possible.
	if got := BetterProposalChance(1, 5, 50, 10, 0.5, 0, f); got != 0 {
		t.Errorf("theta 0 → 0, got %v", got)
	}
	// Price at top of support: nobody can outbid.
	if got := BetterProposalChance(1, 5, 50, 10, 1, 1, f); got != 0 {
		t.Errorf("top price → 0, got %v", got)
	}
	got := BetterProposalChance(1, 5, 50, 10, 0.2, 1, f)
	if got <= 0 || got > 1 {
		t.Errorf("chance = %v, want in (0,1]", got)
	}
}

// TestBetterProposalChanceDecreasesWithRound: Q^k decreases with k.
func TestBetterProposalChanceDecreasesWithRound(t *testing.T) {
	f := Uniform01{}
	prev := 2.0
	for k := 1; k <= 40; k += 3 {
		q := BetterProposalChance(k, 4, 40, 8, 0.4, 0.6, f)
		if q > prev+1e-12 {
			t.Errorf("Q^%d = %v increased from %v", k, q, prev)
		}
		prev = q
	}
}

// TestBetterProposalChanceMonotoneInTheta: easier compatibility, higher
// chance.
func TestBetterProposalChanceMonotoneInTheta(t *testing.T) {
	f := Uniform01{}
	prev := -1.0
	for _, theta := range []float64{0, 0.25, 0.5, 0.75, 1} {
		q := BetterProposalChance(3, 4, 40, 8, 0.4, theta, f)
		if q < prev-1e-12 {
			t.Errorf("chance at θ=%v is %v, below %v", theta, q, prev)
		}
		prev = q
	}
}

func TestEstimateTheta(t *testing.T) {
	interferes := func(a, b int) bool {
		// 0 interferes with everyone; others pairwise free.
		return a == 0 || b == 0
	}
	// Coalition {0, 1} with lowest = 1: candidate 2 conflicts with member 0.
	if got := EstimateTheta([]int{2, 3}, []int{0, 1}, 1, interferes); got != 0 {
		t.Errorf("theta = %v, want 0 (member 0 blocks everyone)", got)
	}
	// Lowest = 0 is exempt from the check: candidates only face member 1.
	if got := EstimateTheta([]int{2, 3}, []int{0, 1}, 0, interferes); got != 1 {
		t.Errorf("theta = %v, want 1 (only member 0 would block, and it is exempt)", got)
	}
	if got := EstimateTheta(nil, []int{0}, 0, interferes); got != 1 {
		t.Errorf("theta of empty candidates = %v, want 1", got)
	}
}

func TestDefaultRule(t *testing.T) {
	d := DefaultRule{M: 3, N: 5}
	if d.StageIISlot() != 16 {
		t.Errorf("StageIISlot = %d, want 16", d.StageIISlot())
	}
	if d.Phase2Slot() != 19 {
		t.Errorf("Phase2Slot = %d, want 19", d.Phase2Slot())
	}
	if d.EndSlot() != 24 {
		t.Errorf("EndSlot = %d, want 24", d.EndSlot())
	}
}
