// Package transition implements the probabilistic stage-transition estimates
// of §IV: the buyer-side eviction probability P^k of eqs. (7)–(8) and the
// seller-side better-proposal probability Q^k of eq. (9). Buyers and sellers
// running the asynchronous protocol (internal/agent) use these to decide
// locally — without global coordination — when it is safe to move from
// Stage I to Stage II.
//
// Both estimates assume buyers' prices are i.i.d. with a known CDF F (the
// paper's simulations use U[0,1]) and that an outstanding buyer proposes to
// a uniformly random channel each round. Binomial terms are computed in the
// log domain so the estimates stay finite for the paper's largest markets
// (n up to several hundred).
package transition

import (
	"fmt"
	"math"
	"sort"
)

// CDF is a cumulative distribution function over offered prices.
type CDF interface {
	// CDF returns P[X ≤ x].
	CDF(x float64) float64
}

// Uniform01 is the U[0,1] price distribution of the paper's evaluation.
type Uniform01 struct{}

// CDF implements CDF.
func (Uniform01) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	default:
		return x
	}
}

// Uniform is the U[lo, hi] distribution, for markets with rescaled prices.
type Uniform struct {
	Lo, Hi float64
}

// CDF implements CDF.
func (u Uniform) CDF(x float64) float64 {
	if u.Hi <= u.Lo {
		if x >= u.Hi {
			return 1
		}
		return 0
	}
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Empirical is the empirical CDF of a price sample, for agents that learn
// the distribution from observed offers rather than assuming one.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical CDF from a sample. It returns an error on
// an empty sample, which has no distribution.
func NewEmpirical(sample []float64) (*Empirical, error) {
	if len(sample) == 0 {
		return nil, fmt.Errorf("transition: empirical CDF of empty sample")
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	return &Empirical{sorted: sorted}, nil
}

// CDF implements CDF.
func (e *Empirical) CDF(x float64) float64 {
	// Number of sample points ≤ x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// logChoose returns log C(n, k) via the log-gamma function.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

// binomialPMF returns C(n,x) p^x (1-p)^(n-x), computed stably in log space.
func binomialPMF(n, x int, p float64) float64 {
	if x < 0 || x > n {
		return 0
	}
	if p <= 0 {
		if x == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if x == n {
			return 1
		}
		return 0
	}
	logPMF := logChoose(n, x) + float64(x)*math.Log(p) + float64(n-x)*math.Log(1-p)
	return math.Exp(logPMF)
}

// clamp01 bounds v into [0, 1] against floating-point drift.
func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}

// EvictionRisk evaluates eqs. (7)–(8) for a buyer matched to a channel.
//
//   - k is the current round (1-based), numChannels is M, horizon is the
//     Stage I bound MN.
//   - unproposed (n in the paper) counts the buyer's interfering neighbors
//     that have not yet proposed to her current seller.
//   - price is the buyer's own offered price b_{i,j} on her current channel.
//
// It returns P^k, the probability the buyer is evicted in some round from k
// through the horizon: each round, x of the n outstanding neighbors propose
// to this channel with probability Binomial(n, 1/M), and at least one of
// them outbids her with probability 1 − F(b)^x.
func EvictionRisk(k, numChannels, horizon, unproposed int, price float64, f CDF) float64 {
	if unproposed <= 0 || k > horizon {
		return 0
	}
	if numChannels <= 0 {
		return 0
	}
	pPropose := 1 / float64(numChannels)
	fb := clamp01(f.CDF(price))
	var pk float64
	for x := 1; x <= unproposed; x++ {
		pk += binomialPMF(unproposed, x, pPropose) * (1 - math.Pow(fb, float64(x)))
	}
	pk = clamp01(pk)
	// P^k = 1 − (1 − p^k)^(MN − k + 1): survive every remaining round.
	return clamp01(1 - math.Pow(1-pk, float64(horizon-k+1)))
}

// BetterProposalChance evaluates eq. (9) and its horizon product for a
// seller: the probability that, from round k through the horizon, she
// receives a proposal that beats her currently cheapest matched buyer and
// fits her coalition.
//
//   - lowestPrice is b_{i,j} of her cheapest matched buyer j.
//   - unproposed (n) counts buyers that have not proposed to her yet.
//   - theta is the probability an unproposed buyer does not interfere with
//     anyone in µ(i) except possibly j (estimate with EstimateTheta).
//
// Each of y arriving proposals beats the incumbent only if its price
// exceeds b_{i,j} and it is coalition-compatible, which happens per
// proposal with probability (1 − F(b))·θ; eq. (9)'s bracket is the
// complement of all y failing.
func BetterProposalChance(k, numChannels, horizon, unproposed int, lowestPrice, theta float64, f CDF) float64 {
	if unproposed <= 0 || k > horizon {
		return 0
	}
	if numChannels <= 0 {
		return 0
	}
	pPropose := 1 / float64(numChannels)
	fb := clamp01(f.CDF(lowestPrice))
	theta = clamp01(theta)
	perProposalFail := clamp01(fb + (1-theta)*(1-fb))
	var qk float64
	for y := 1; y <= unproposed; y++ {
		qk += binomialPMF(unproposed, y, pPropose) * (1 - math.Pow(perProposalFail, float64(y)))
	}
	qk = clamp01(qk)
	return clamp01(1 - math.Pow(1-qk, float64(horizon-k+1)))
}

// EstimateTheta computes the empirical θ of eq. (9): the fraction of the
// given candidate buyers that do not interfere (per interferes) with any
// coalition member other than lowest. The paper calls θ "an empirical value
// ... estimated by analyzing the interference relationship between buyers in
// and out of µ(i)"; a seller knows her own channel's interference graph, so
// she can evaluate this exactly over the buyers yet to propose.
func EstimateTheta(candidates, coalition []int, lowest int, interferes func(a, b int) bool) float64 {
	if len(candidates) == 0 {
		return 1
	}
	compatible := 0
	for _, c := range candidates {
		ok := true
		for _, member := range coalition {
			if member == lowest || member == c {
				continue
			}
			if interferes(c, member) {
				ok = false
				break
			}
		}
		if ok {
			compatible++
		}
	}
	return float64(compatible) / float64(len(candidates))
}

// DefaultRule is the paper's fallback schedule: wait MN slots before Stage
// II, M more before Phase 2, N more before termination.
type DefaultRule struct {
	M, N int
}

// StageIISlot returns the first slot of Stage II Phase 1.
func (d DefaultRule) StageIISlot() int { return d.M*d.N + 1 }

// Phase2Slot returns the first slot of Stage II Phase 2.
func (d DefaultRule) Phase2Slot() int { return d.StageIISlot() + d.M }

// EndSlot returns the slot at which matching terminates.
func (d DefaultRule) EndSlot() int { return d.Phase2Slot() + d.N }
