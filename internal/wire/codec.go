// Package wire runs the asynchronous matching protocol over real TCP
// connections: a hub process coordinates slots (the paper's time-slot model
// needs a clock, and a star topology is the standard way to provide one in
// testbeds), and one node process per buyer and seller runs the same state
// machines the simulators use (agent.BuyerNode / agent.SellerNode). Frames
// are length-prefixed JSON, so nodes could be reimplemented in any language
// against this codec.
//
// The slot protocol between hub and nodes:
//
//	node → hub:  hello{kind, index}
//	hub  → node: tick{slot, inbox}
//	node → hub:  end-slot{outbox, idle}
//	hub  → node: done{}            — when all nodes idle and nothing queued
//	node → hub:  final{matched/coalition}
//
// Message loss and delay are properties of real networks rather than
// injected faults here; the protocol's retransmission logic still applies
// because the state machines are shared with the simulated runners.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"specmatch/internal/agent"
	"specmatch/internal/simnet"
)

// MaxFrame bounds accepted frame sizes (1 MiB); a peer announcing more is
// broken or hostile.
const MaxFrame = 1 << 20

// WriteFrame writes v as a length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	if len(data) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit %d", len(data), MaxFrame)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(data)))
	if _, err := w.Write(prefix[:]); err != nil {
		return fmt.Errorf("wire: write prefix: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return fmt.Errorf("wire: read prefix: %w", err)
	}
	size := binary.BigEndian.Uint32(prefix[:])
	if size > MaxFrame {
		return fmt.Errorf("wire: announced frame of %d bytes exceeds limit %d", size, MaxFrame)
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return fmt.Errorf("wire: read body: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode: %w", err)
	}
	return nil
}

// NodeRef addresses an agent on the wire.
type NodeRef struct {
	Kind  string `json:"kind"` // "buyer" or "seller"
	Index int    `json:"index"`
}

func toRef(id simnet.NodeID) NodeRef {
	kind := "buyer"
	if id.Kind == simnet.KindSeller {
		kind = "seller"
	}
	return NodeRef{Kind: kind, Index: id.Index}
}

func fromRef(ref NodeRef) (simnet.NodeID, error) {
	switch ref.Kind {
	case "buyer":
		return simnet.Buyer(ref.Index), nil
	case "seller":
		return simnet.Seller(ref.Index), nil
	default:
		return simnet.NodeID{}, fmt.Errorf("wire: unknown node kind %q", ref.Kind)
	}
}

// WireMsg is a protocol message in transit between agents, with the payload
// discriminated by Type.
type WireMsg struct {
	From    NodeRef         `json:"from"`
	To      NodeRef         `json:"to"`
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`

	// Trace is the sender's span context as a W3C traceparent, set when the
	// sending node has tracing enabled; the receiving node parents the
	// message's agent.handle span under it, stitching one causal tree across
	// processes. Empty when tracing is off; decoders ignore unknown values.
	Trace string `json:"trace,omitempty"`
}

// payloadCodec maps agent payload types to wire names and back.
var _payloadDecoders = map[string]func(json.RawMessage) (any, error){
	"propose":           decodeAs[agent.Propose],
	"proposal-decision": decodeAs[agent.ProposalDecision],
	"evict":             decodeAs[agent.Evict],
	"digest":            decodeAs[agent.Digest],
	"transfer-apply":    decodeAs[agent.TransferApply],
	"transfer-decision": decodeAs[agent.TransferDecision],
	"invite":            decodeAs[agent.Invite],
	"invite-response":   decodeAs[agent.InviteResponse],
	"leave":             decodeAs[agent.Leave],
	"seller-transition": decodeAs[agent.SellerTransition],
}

func decodeAs[T any](raw json.RawMessage) (any, error) {
	var v T
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func payloadName(p any) (string, error) {
	switch p.(type) {
	case agent.Propose:
		return "propose", nil
	case agent.ProposalDecision:
		return "proposal-decision", nil
	case agent.Evict:
		return "evict", nil
	case agent.Digest:
		return "digest", nil
	case agent.TransferApply:
		return "transfer-apply", nil
	case agent.TransferDecision:
		return "transfer-decision", nil
	case agent.Invite:
		return "invite", nil
	case agent.InviteResponse:
		return "invite-response", nil
	case agent.Leave:
		return "leave", nil
	case agent.SellerTransition:
		return "seller-transition", nil
	default:
		return "", fmt.Errorf("wire: unregistered payload type %T", p)
	}
}

// EncodeMsg converts an in-memory protocol message to its wire form.
func EncodeMsg(msg simnet.Message) (WireMsg, error) {
	name, err := payloadName(msg.Payload)
	if err != nil {
		return WireMsg{}, err
	}
	raw, err := json.Marshal(msg.Payload)
	if err != nil {
		return WireMsg{}, fmt.Errorf("wire: payload encode: %w", err)
	}
	return WireMsg{From: toRef(msg.From), To: toRef(msg.To), Type: name, Payload: raw}, nil
}

// DecodeMsg converts a wire message back to its in-memory form.
func DecodeMsg(wm WireMsg) (simnet.Message, error) {
	decoder, ok := _payloadDecoders[wm.Type]
	if !ok {
		return simnet.Message{}, fmt.Errorf("wire: unknown message type %q", wm.Type)
	}
	payload, err := decoder(wm.Payload)
	if err != nil {
		return simnet.Message{}, fmt.Errorf("wire: payload decode (%s): %w", wm.Type, err)
	}
	from, err := fromRef(wm.From)
	if err != nil {
		return simnet.Message{}, err
	}
	to, err := fromRef(wm.To)
	if err != nil {
		return simnet.Message{}, err
	}
	return simnet.Message{From: from, To: to, Payload: payload}, nil
}

// Control frames between hub and nodes.

// Hello registers a node with the hub.
type Hello struct {
	Node NodeRef `json:"node"`
}

// Tick opens a slot and delivers the node's inbox.
type Tick struct {
	Slot  int       `json:"slot"`
	Inbox []WireMsg `json:"inbox,omitempty"`

	// Trace carries the hub's wire.slot span context as a W3C traceparent so
	// node-side spans for this slot join the hub's trace. Empty when the hub
	// runs without tracing.
	Trace string `json:"trace,omitempty"`
}

// EndSlot closes a node's slot with its outbox and quiescence flag.
type EndSlot struct {
	Outbox []WireMsg `json:"outbox,omitempty"`
	Idle   bool      `json:"idle"`
}

// Done tells nodes the market has quiesced.
type Done struct{}

// Final is a node's closing state report.
type Final struct {
	Node NodeRef `json:"node"`
	// MatchedTo is the buyer's believed seller (buyers only).
	MatchedTo int `json:"matched_to,omitempty"`
	// Coalition is the seller's matched buyers (sellers only).
	Coalition []int `json:"coalition,omitempty"`
}

// frame is the hub-node transport envelope: exactly one field is set.
type frame struct {
	Hello   *Hello   `json:"hello,omitempty"`
	Tick    *Tick    `json:"tick,omitempty"`
	EndSlot *EndSlot `json:"end_slot,omitempty"`
	Done    *Done    `json:"done,omitempty"`
	Final   *Final   `json:"final,omitempty"`
}

// itoa is strconv.Itoa under a name short enough for span-attr call sites.
func itoa(v int) string { return strconv.Itoa(v) }

// frameKind names a frame's populated arm, for span annotations.
func frameKind(f frame) string {
	switch {
	case f.Hello != nil:
		return "hello"
	case f.Tick != nil:
		return "tick"
	case f.EndSlot != nil:
		return "end_slot"
	case f.Done != nil:
		return "done"
	case f.Final != nil:
		return "final"
	default:
		return "empty"
	}
}
