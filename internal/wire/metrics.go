package wire

import (
	"time"

	"specmatch/internal/agent"
	"specmatch/internal/obs"
)

// hubMetrics holds the hub's observability handles: per-type frame and
// payload-byte counters for relayed messages, the per-slot latency
// histogram, and the shared I/O error counter. Built once at Serve; a nil
// *hubMetrics disables everything at one pointer check per use.
type hubMetrics struct {
	frames      map[string]*obs.Counter // wire.frames.<type>
	bytes       map[string]*obs.Counter // wire.bytes.<type>, payload bytes
	slotSeconds *obs.Histogram          // wire.slot_seconds
	ioErrors    *obs.Counter            // wire.errors.io
}

func newHubMetrics(reg *obs.Registry) *hubMetrics {
	if reg == nil {
		return nil
	}
	names := agent.PayloadNames()
	hm := &hubMetrics{
		frames:      make(map[string]*obs.Counter, len(names)),
		bytes:       make(map[string]*obs.Counter, len(names)),
		slotSeconds: reg.Histogram("wire.slot_seconds", obs.TimeBuckets()),
		ioErrors:    reg.Counter("wire.errors.io"),
	}
	for _, name := range names {
		hm.frames[name] = reg.Counter("wire.frames." + name)
		hm.bytes[name] = reg.Counter("wire.bytes." + name)
	}
	return hm
}

// onRelay counts one protocol message passing through the hub. Unknown
// types hit a nil counter, which is a safe no-op.
func (hm *hubMetrics) onRelay(wm WireMsg) {
	if hm == nil {
		return
	}
	hm.frames[wm.Type].Inc()
	hm.bytes[wm.Type].Add(int64(len(wm.Payload)))
}

// slotTimer starts timing one hub slot; zero when metrics are off.
func (hm *hubMetrics) slotTimer() time.Time {
	if hm == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeSlot records one slot's wall time (tick fan-out through end-slot
// collection).
func (hm *hubMetrics) observeSlot(start time.Time) {
	if hm == nil {
		return
	}
	hm.slotSeconds.Observe(time.Since(start).Seconds())
}

// nodeMetrics holds a node process's wire-level error counters.
type nodeMetrics struct {
	ioErrors     *obs.Counter // wire.errors.io
	encodeErrors *obs.Counter // wire.errors.encode
	decodeErrors *obs.Counter // wire.errors.decode
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	if reg == nil {
		return nil
	}
	return &nodeMetrics{
		ioErrors:     reg.Counter("wire.errors.io"),
		encodeErrors: reg.Counter("wire.errors.encode"),
		decodeErrors: reg.Counter("wire.errors.decode"),
	}
}

func (nm *nodeMetrics) onEncodeError() {
	if nm != nil {
		nm.encodeErrors.Inc()
	}
}

func (nm *nodeMetrics) onDecodeError() {
	if nm != nil {
		nm.decodeErrors.Inc()
	}
}

func (nm *nodeMetrics) ioErrCounter() *obs.Counter {
	if nm == nil {
		return nil
	}
	return nm.ioErrors
}
