package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"specmatch/internal/agent"
	"specmatch/internal/simnet"
)

// everyPayload is one message of every protocol type, with representative
// field values.
func everyPayload() []any {
	return []any{
		agent.Propose{Price: 0.75},
		agent.ProposalDecision{Accepted: true, Proposers: []int{0, 2, 5}},
		agent.Evict{},
		agent.Digest{Proposers: []int{1, 3}},
		agent.TransferApply{Price: 0.25},
		agent.TransferDecision{Accepted: false},
		agent.Invite{},
		agent.InviteResponse{Accepted: true},
		agent.Leave{},
		agent.SellerTransition{},
	}
}

// TestCodecRoundTripAllTypes pins the encode/decode contract for every
// protocol message type: the wire name matches agent.PayloadName and the
// decoded message equals the original.
func TestCodecRoundTripAllTypes(t *testing.T) {
	for _, payload := range everyPayload() {
		msg := simnet.Message{From: simnet.Buyer(3), To: simnet.Seller(1), Payload: payload}
		wm, err := EncodeMsg(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", payload, err)
		}
		if want := agent.PayloadName(payload); wm.Type != want {
			t.Errorf("wire name for %T = %q, want %q", payload, wm.Type, want)
		}
		got, err := DecodeMsg(wm)
		if err != nil {
			t.Fatalf("decode %T: %v", payload, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("round trip %T: got %+v, want %+v", payload, got, msg)
		}
	}
}

// mustFrameBytes serializes a frame the way the hub/node loops do; the
// inputs are fixed seed values, so failure is a programming error.
func mustFrameBytes(f frame) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzCodec feeds arbitrary byte streams to the frame reader and, for frames
// that parse, to the message decoder. The contract under attack: malformed
// input yields a clean error, never a panic or unbounded allocation, and any
// message that decodes must re-encode to the same wire type.
func FuzzCodec(f *testing.F) {
	// Seed corpus: one tick frame per protocol message type, plus the other
	// frame kinds, plus adversarial variants.
	for _, payload := range everyPayload() {
		wm, err := EncodeMsg(simnet.Message{From: simnet.Buyer(0), To: simnet.Seller(0), Payload: payload})
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		data := mustFrameBytes(frame{Tick: &Tick{Slot: 1, Inbox: []WireMsg{wm}}})
		f.Add(data)
		f.Add(data[:len(data)/2]) // truncated body
		f.Add(data[:3])           // truncated length prefix
		mutated := bytes.Clone(data)
		mutated[5] ^= 0xff // corrupt JSON start
		f.Add(mutated)
	}
	f.Add(mustFrameBytes(frame{Hello: &Hello{Node: NodeRef{Kind: "buyer", Index: 2}}}))
	f.Add(mustFrameBytes(frame{EndSlot: &EndSlot{Idle: true}}))
	f.Add(mustFrameBytes(frame{Done: &Done{}}))
	f.Add(mustFrameBytes(frame{Final: &Final{Node: NodeRef{Kind: "seller"}, Coalition: []int{1}}}))
	// Oversized length prefix: announced size above MaxFrame must be
	// rejected before any allocation.
	var huge [8]byte
	binary.BigEndian.PutUint32(huge[:4], MaxFrame+1)
	f.Add(huge[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		if err := ReadFrame(bytes.NewReader(data), &fr); err != nil {
			return // clean rejection is the contract for malformed input
		}
		if fr.Tick == nil {
			return
		}
		for _, wm := range fr.Tick.Inbox {
			msg, err := DecodeMsg(wm)
			if err != nil {
				continue // unknown type / bad payload: clean error
			}
			re, err := EncodeMsg(msg)
			if err != nil {
				t.Fatalf("decoded message failed to re-encode: %v (wire %+v)", err, wm)
			}
			if re.Type != wm.Type {
				t.Fatalf("re-encode changed type %q -> %q", wm.Type, re.Type)
			}
		}
	})
}
