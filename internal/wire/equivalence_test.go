package wire

import (
	"reflect"
	"testing"

	"specmatch/internal/agent"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/stability"
)

// msgCounts collects the agent layer's per-type message metrics plus the
// stage-transition counters from a registry, keyed for direct comparison.
func msgCounts(reg *obs.Registry) map[string]int64 {
	out := make(map[string]int64, 2*10+2)
	for _, name := range agent.PayloadNames() {
		out["sent."+name] = reg.CounterValue("agent.sent." + name)
		out["delivered."+name] = reg.CounterValue("agent.delivered." + name)
	}
	out["transitions.buyer"] = reg.CounterValue("agent.transitions.buyer")
	out["transitions.seller"] = reg.CounterValue("agent.transitions.seller")
	return out
}

// TestThreeRuntimeEquivalence runs the same seeded markets through all three
// protocol runtimes — the sequential simulator (agent.Run), the
// goroutine-per-agent simulator (agent.RunConcurrent), and an in-process TCP
// deployment (MatchOverTCP) — and asserts they produce identical final
// matchings AND identical per-type message-count metrics. The runtimes share
// the buyer/seller state machines, and on a reliable network the hub's
// next-slot relay matches simnet's one-slot latency exactly, so any
// divergence in either the outcome or the traffic profile is a transport
// bug, not protocol noise.
func TestThreeRuntimeEquivalence(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		mkCfg := func(reg *obs.Registry) agent.Config {
			return agent.Config{
				BuyerRule:  agent.BuyerRuleII,
				SellerRule: agent.SellerProbabilistic,
				Metrics:    reg,
			}
		}

		regSeq := obs.NewRegistry()
		seq, err := agent.Run(m, mkCfg(regSeq))
		if err != nil {
			t.Fatalf("seed %d: sequential run: %v", seed, err)
		}
		regCon := obs.NewRegistry()
		con, err := agent.RunConcurrent(m, mkCfg(regCon))
		if err != nil {
			t.Fatalf("seed %d: concurrent run: %v", seed, err)
		}
		// All TCP nodes share one registry, so the deployment's aggregate
		// agent.* counters are directly comparable to the simulated runs'.
		regTCP := obs.NewRegistry()
		report, err := MatchOverTCP(m, NodeConfig{Agent: mkCfg(regTCP)}, HubConfig{})
		if err != nil {
			t.Fatalf("seed %d: TCP run: %v", seed, err)
		}

		if !seq.Matching.Equal(con.Matching) {
			t.Errorf("seed %d: concurrent matching %v != sequential %v", seed, con.Matching, seq.Matching)
		}
		if !seq.Matching.Equal(report.Matching) {
			t.Errorf("seed %d: TCP matching %v != sequential %v", seed, report.Matching, seq.Matching)
		}
		if v := stability.CheckInterferenceFree(m, seq.Matching); len(v) != 0 {
			t.Errorf("seed %d: interference %v", seed, v)
		}

		want := msgCounts(regSeq)
		if got := msgCounts(regCon); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: concurrent message metrics diverge\n got %v\nwant %v", seed, got, want)
		}
		if got := msgCounts(regTCP); !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: TCP message metrics diverge\n got %v\nwant %v", seed, got, want)
		}

		// Sanity: the protocol actually exchanged messages, so the metric
		// comparison above compared real traffic rather than all-zeros.
		if want["sent.propose"] == 0 || want["delivered.propose"] == 0 {
			t.Errorf("seed %d: no proposals metered: %v", seed, want)
		}
	}
}
