package wire

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"specmatch/internal/agent"
	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/paperexample"
	"specmatch/internal/simnet"
	"specmatch/internal/stability"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Tick{Slot: 7, Inbox: []WireMsg{{From: NodeRef{Kind: "buyer", Index: 1}, Type: "leave"}}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Tick
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v vs %+v", in, out)
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	big := strings.Repeat("x", MaxFrame+1)
	if err := WriteFrame(&buf, big); err == nil {
		t.Error("oversized frame should fail to write")
	}
	// A forged oversized prefix must be rejected before allocation.
	forged := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	var v any
	if err := ReadFrame(forged, &v); err == nil {
		t.Error("forged oversized prefix should fail")
	}
	// Truncated body.
	trunc := bytes.NewReader([]byte{0, 0, 0, 10, 'x'})
	if err := ReadFrame(trunc, &v); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestMsgCodecRoundTrip(t *testing.T) {
	payloads := []any{
		agent.Propose{Price: 0.5},
		agent.ProposalDecision{Accepted: true, Proposers: []int{1, 2}},
		agent.Evict{},
		agent.Digest{Proposers: []int{3}},
		agent.TransferApply{Price: 0.25},
		agent.TransferDecision{Accepted: false},
		agent.Invite{},
		agent.InviteResponse{Accepted: true},
		agent.Leave{},
		agent.SellerTransition{},
	}
	for _, p := range payloads {
		in := simnet.Message{From: simnet.Buyer(2), To: simnet.Seller(1), Payload: p}
		wm, err := EncodeMsg(in)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		out, err := DecodeMsg(wm)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T round trip: %+v vs %+v", p, in, out)
		}
	}
}

func TestMsgCodecErrors(t *testing.T) {
	if _, err := EncodeMsg(simnet.Message{Payload: 42}); err == nil {
		t.Error("unregistered payload should fail")
	}
	if _, err := DecodeMsg(WireMsg{Type: "nonsense"}); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := DecodeMsg(WireMsg{Type: "propose", From: NodeRef{Kind: "alien"}}); err == nil {
		t.Error("unknown node kind should fail")
	}
	if _, err := DecodeMsg(WireMsg{Type: "propose", From: NodeRef{Kind: "buyer"}, To: NodeRef{Kind: "seller"}, Payload: []byte("{bad")}); err == nil {
		t.Error("bad payload JSON should fail")
	}
}

// TestMatchOverTCPToy runs the paper's toy market over real localhost TCP
// and checks it reproduces the published result.
func TestMatchOverTCPToy(t *testing.T) {
	m := paperexample.Toy()
	report, err := MatchOverTCP(m, NodeConfig{}, HubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Welfare != paperexample.ToyFinalWelfare {
		t.Errorf("welfare over TCP = %v, want %v", report.Welfare, paperexample.ToyFinalWelfare)
	}
	sync, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Matching.Equal(sync.Matching) {
		t.Errorf("TCP matching %v != sync %v", report.Matching, sync.Matching)
	}
}

// TestMatchOverTCPRandomMarkets: TCP execution equals the simulated run on
// random markets under the rule-based transitions.
func TestMatchOverTCPRandomMarkets(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 12, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		acfg := agent.Config{BuyerRule: agent.BuyerRuleII, SellerRule: agent.SellerProbabilistic}
		report, err := MatchOverTCP(m, NodeConfig{Agent: acfg}, HubConfig{})
		if err != nil {
			t.Fatal(err)
		}
		sim, err := agent.Run(m, acfg)
		if err != nil {
			t.Fatal(err)
		}
		if !report.Matching.Equal(sim.Matching) {
			t.Errorf("seed %d: TCP matching differs from simulated run", seed)
		}
		if v := stability.CheckInterferenceFree(m, report.Matching); len(v) != 0 {
			t.Errorf("seed %d: interference %v", seed, v)
		}
	}
}

// TestHubRejectsDuplicateRegistration: two nodes claiming the same identity
// abort the market.
func TestHubRejectsDuplicateRegistration(t *testing.T) {
	m := paperexample.Toy()
	hub, err := NewHub(m, HubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr := hub.Addr()
	done := make(chan error, 1)
	go func() {
		_, err := hub.Serve(m)
		done <- err
	}()
	// Two buyers with index 0.
	go func() { _, _ = RunBuyerNode(addr, 0, m, NodeConfig{}) }()
	go func() { _, _ = RunBuyerNode(addr, 0, m, NodeConfig{}) }()
	if err := <-done; err == nil {
		t.Error("duplicate registration should abort Serve")
	}
}

// TestHubRejectsGarbageHandshake: a connection whose first frame is not a
// hello aborts the market instead of hanging.
func TestHubRejectsGarbageHandshake(t *testing.T) {
	m := paperexample.Toy()
	hub, err := NewHub(m, HubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := hub.Serve(m)
		done <- err
	}()
	conn, err := net.Dial("tcp", hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := WriteFrame(conn, frame{Tick: &Tick{Slot: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Error("non-hello first frame should abort Serve")
	}
}

// TestHubTimesOutSilentNode: a registered node that never answers ticks
// trips the IO timeout rather than hanging the market forever.
func TestHubTimesOutSilentNode(t *testing.T) {
	m := paperexample.Toy()
	hub, err := NewHub(m, HubConfig{IOTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr := hub.Addr()
	done := make(chan error, 1)
	go func() {
		_, err := hub.Serve(m)
		done <- err
	}()
	// All sellers and all but one buyer behave; buyer 4 registers then
	// goes silent.
	for i := 0; i < m.M(); i++ {
		go func(i int) { _, _ = RunSellerNode(addr, i, m, NodeConfig{}) }(i)
	}
	for j := 0; j < m.N()-1; j++ {
		go func(j int) { _, _ = RunBuyerNode(addr, j, m, NodeConfig{}) }(j)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := WriteFrame(conn, frame{Hello: &Hello{Node: NodeRef{Kind: "buyer", Index: m.N() - 1}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("silent node should abort Serve with a timeout error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hub hung on a silent node")
	}
}
