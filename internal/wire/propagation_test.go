package wire

import (
	"testing"

	"specmatch/internal/agent"
	"specmatch/internal/market"
	"specmatch/internal/trace"
)

// verifyTraceTree asserts the structural invariants every runtime's dump
// must satisfy: spans exist, they all belong to one trace with exactly one
// root, every non-zero parent resolves inside the dump (no orphans — the
// acceptance bar specstrace -check enforces), and the expected span names
// all appear.
func verifyTraceTree(t *testing.T, spans []trace.Span, wantNames []string) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("flight recorder captured no spans")
	}
	byID := make(map[trace.SpanID]trace.Span, len(spans))
	traces := make(map[trace.TraceID]int)
	roots := 0
	for _, s := range spans {
		byID[s.ID] = s
		traces[s.Trace]++
		if s.Parent.IsZero() {
			roots++
		}
	}
	if len(traces) != 1 {
		t.Errorf("spans split across %d traces, want one causal tree", len(traces))
	}
	if roots != 1 {
		t.Errorf("%d root spans, want exactly one", roots)
	}
	for _, s := range spans {
		if s.Parent.IsZero() {
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("orphan: %s (span %s) references missing parent %s", s.Name, s.ID, s.Parent)
			continue
		}
		if p.Trace != s.Trace {
			t.Errorf("%s crosses traces: parent %s is in %s", s.Name, p.Name, p.Trace)
		}
	}
	have := make(map[string]bool)
	for _, s := range spans {
		have[s.Name] = true
	}
	for _, name := range wantNames {
		if !have[name] {
			t.Errorf("no %s span recorded", name)
		}
	}
}

// TestTracePropagationAcrossRuntimes runs the same market through all three
// runtimes with a flight recorder attached and checks each produces one
// coherent trace tree — and bit-identical results to the untraced run, since
// spans must never perturb the protocol.
func TestTracePropagationAcrossRuntimes(t *testing.T) {
	m, err := market.Generate(market.Config{Sellers: 3, Buyers: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	acfg := agent.Config{BuyerRule: agent.BuyerRuleII, SellerRule: agent.SellerProbabilistic}

	t.Run("sequential", func(t *testing.T) {
		plain, err := agent.Run(m, acfg)
		if err != nil {
			t.Fatal(err)
		}
		fl := trace.NewFlight(1 << 14)
		traced := acfg
		traced.Flight = fl
		res, err := agent.Run(m, traced)
		if err != nil {
			t.Fatal(err)
		}
		if res.Welfare != plain.Welfare || !res.Matching.Equal(plain.Matching) {
			t.Errorf("tracing changed the outcome: welfare %v vs %v", res.Welfare, plain.Welfare)
		}
		verifyTraceTree(t, fl.Snapshot(), []string{"agent.run", "agent.handle", "simnet.slot"})
	})

	t.Run("concurrent", func(t *testing.T) {
		plain, err := agent.RunConcurrent(m, acfg)
		if err != nil {
			t.Fatal(err)
		}
		fl := trace.NewFlight(1 << 14)
		traced := acfg
		traced.Flight = fl
		res, err := agent.RunConcurrent(m, traced)
		if err != nil {
			t.Fatal(err)
		}
		if res.Welfare != plain.Welfare || !res.Matching.Equal(plain.Matching) {
			t.Errorf("tracing changed the outcome: welfare %v vs %v", res.Welfare, plain.Welfare)
		}
		verifyTraceTree(t, fl.Snapshot(), []string{"agent.run", "agent.handle"})
	})

	t.Run("tcp", func(t *testing.T) {
		plain, err := MatchOverTCP(m, NodeConfig{Agent: acfg}, HubConfig{})
		if err != nil {
			t.Fatal(err)
		}
		// Hub and nodes share one in-process flight here, so the merged view
		// a multi-process deployment gets from merging per-process dumps is
		// what this single snapshot holds: node-side wire.tick spans parented
		// on hub-side wire.slot spans via Tick.Trace.
		fl := trace.NewFlight(1 << 14)
		report, err := MatchOverTCP(m, NodeConfig{Agent: acfg, Flight: fl}, HubConfig{Flight: fl})
		if err != nil {
			t.Fatal(err)
		}
		if report.Welfare != plain.Welfare || !report.Matching.Equal(plain.Matching) {
			t.Errorf("tracing changed the outcome: welfare %v vs %v", report.Welfare, plain.Welfare)
		}
		verifyTraceTree(t, fl.Snapshot(), []string{
			"wire.serve", "wire.slot", "wire.send", "wire.recv", "wire.tick", "agent.handle",
		})
	})
}

// TestNodeFlightDefaultsFromAgent: setting only Agent.Flight must trace the
// whole node (withDefaults promotes it), so either knob works.
func TestNodeFlightDefaultsFromAgent(t *testing.T) {
	fl := trace.NewFlight(1 << 12)
	cfg := NodeConfig{Agent: agent.Config{Flight: fl}}
	cfg = cfg.withDefaults()
	if cfg.Flight != fl {
		t.Fatal("NodeConfig.withDefaults must adopt Agent.Flight")
	}
}
