package wire

import (
	"fmt"
	"net"
	"sort"
	"time"

	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/obs"
	"specmatch/internal/trace"
)

// HubConfig tunes the coordinator.
type HubConfig struct {
	// Addr is the listen address; empty means "127.0.0.1:0" (ephemeral).
	Addr string
	// MaxSlots aborts a market that fails to quiesce; zero means 4·M·N +
	// 4·(M+N) + 200, comfortably above the default schedule.
	MaxSlots int
	// IOTimeout bounds each network read/write; zero means 10s.
	IOTimeout time.Duration

	// Metrics, when non-nil, receives hub instrumentation: relayed frame and
	// payload-byte counts per message type (wire.frames.<type>,
	// wire.bytes.<type>), the per-slot latency histogram
	// (wire.slot_seconds), and I/O deadline failures (wire.errors.io).
	// Metric names are catalogued in PROTOCOL.md. Nil disables
	// instrumentation and never changes relay behavior.
	Metrics *obs.Registry

	// Flight, when non-nil, records causal spans: wire.serve as the market's
	// root, wire.slot per coordinated slot, and wire.send / wire.recv per
	// frame. The slot's span context also rides each Tick frame (Tick.Trace)
	// so node-side spans join the same trace. Nil disables tracing and never
	// changes relay behavior.
	Flight *trace.Flight
}

func (c HubConfig) withDefaults(numSellers, numBuyers int) HubConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxSlots == 0 {
		c.MaxSlots = 4*numSellers*numBuyers + 4*(numSellers+numBuyers) + 200
	}
	if c.IOTimeout == 0 {
		c.IOTimeout = 10 * time.Second
	}
	return c
}

// HubReport is the coordinator's view of a completed market.
type HubReport struct {
	Matching *matching.Matching
	Welfare  float64
	Slots    int
	// Messages counts protocol messages relayed between agents.
	Messages int
}

// Hub coordinates one matching market over TCP. Create with NewHub, then
// Serve; nodes connect to Addr().
type Hub struct {
	cfg        HubConfig
	numSellers int
	numBuyers  int
	ln         net.Listener
}

// NewHub starts listening for the given market shape.
func NewHub(m *market.Market, cfg HubConfig) (*Hub, error) {
	cfg = cfg.withDefaults(m.M(), m.N())
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("wire: hub listen: %w", err)
	}
	return &Hub{cfg: cfg, numSellers: m.M(), numBuyers: m.N(), ln: ln}, nil
}

// Addr returns the hub's listen address for nodes to dial.
func (h *Hub) Addr() string { return h.ln.Addr().String() }

// Close releases the listener. Serve closes it on return as well.
func (h *Hub) Close() error { return h.ln.Close() }

// conn wraps a node connection with framing, deadlines, an optional error
// counter (wire.errors.io; nil-safe no-op when metrics are off), and optional
// frame spans. parent, when set, supplies the current span parent — the
// owning loop's slot or tick context — and is only called from that loop's
// goroutine.
type conn struct {
	c       net.Conn
	timeout time.Duration
	ioErrs  *obs.Counter
	fl      *trace.Flight
	parent  func() trace.SpanContext
}

// frameSpan opens a wire.send / wire.recv span under the loop's current
// context. When the parent closure reports no active context (a node outside
// any slot — handshake, done, final), the frame goes untraced rather than
// starting a singleton trace per frame.
func (nc *conn) frameSpan(name string) trace.SpanHandle {
	if nc.parent == nil {
		return trace.SpanHandle{}
	}
	p := nc.parent()
	if p.IsZero() {
		return trace.SpanHandle{}
	}
	return nc.fl.Start(p, name)
}

func (nc *conn) write(f frame) (err error) {
	span := nc.frameSpan("wire.send")
	defer func() {
		if span.Active() {
			span.Annotate("kind=" + frameKind(f))
			if err != nil {
				span.Annotate("err=1")
			}
		}
		span.End()
	}()
	if err := nc.c.SetWriteDeadline(time.Now().Add(nc.timeout)); err != nil {
		nc.ioErrs.Inc()
		return fmt.Errorf("wire: set deadline: %w", err)
	}
	if err := WriteFrame(nc.c, f); err != nil {
		nc.ioErrs.Inc()
		return err
	}
	return nil
}

func (nc *conn) read() (f frame, err error) {
	span := nc.frameSpan("wire.recv")
	defer func() {
		if span.Active() {
			span.Annotate("kind=" + frameKind(f))
			if err != nil {
				span.Annotate("err=1")
			}
		}
		span.End()
	}()
	if err := nc.c.SetReadDeadline(time.Now().Add(nc.timeout)); err != nil {
		nc.ioErrs.Inc()
		return frame{}, fmt.Errorf("wire: set deadline: %w", err)
	}
	if err := ReadFrame(nc.c, &f); err != nil {
		nc.ioErrs.Inc()
		return frame{}, err
	}
	return f, nil
}

// Serve accepts all node connections, runs the slot loop to quiescence, and
// assembles the final matching from the nodes' closing reports. It closes
// the listener on return.
func (h *Hub) Serve(m *market.Market) (HubReport, error) {
	defer func() { _ = h.ln.Close() }()
	var report HubReport
	hm := newHubMetrics(h.cfg.Metrics)
	var ioErrs *obs.Counter
	if hm != nil {
		ioErrs = hm.ioErrors
	}

	root := h.cfg.Flight.Start(trace.SpanContext{}, "wire.serve")
	defer root.End()
	// cur is the parent for the hub's frame spans: the current slot's span
	// once the slot loop starts, the serve root before and after. Serve runs
	// on one goroutine, so the conns' parent closures read it race-free.
	cur := root.Context()

	total := h.numSellers + h.numBuyers
	nodes := make(map[NodeRef]*conn, total)
	for len(nodes) < total {
		raw, err := h.ln.Accept()
		if err != nil {
			return report, fmt.Errorf("wire: hub accept: %w", err)
		}
		nc := &conn{c: raw, timeout: h.cfg.IOTimeout, ioErrs: ioErrs,
			fl: h.cfg.Flight, parent: func() trace.SpanContext { return cur }}
		f, err := nc.read()
		if err != nil || f.Hello == nil {
			_ = raw.Close()
			if err == nil {
				err = fmt.Errorf("first frame was not hello")
			}
			return report, fmt.Errorf("wire: hub handshake: %w", err)
		}
		ref := f.Hello.Node
		if _, dup := nodes[ref]; dup {
			_ = raw.Close()
			return report, fmt.Errorf("wire: duplicate registration for %v", ref)
		}
		nodes[ref] = nc
	}
	defer func() {
		for _, nc := range nodes {
			_ = nc.c.Close()
		}
	}()

	// Deterministic node order: buyers by index, then sellers.
	order := make([]NodeRef, 0, total)
	for ref := range nodes {
		order = append(order, ref)
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].Kind != order[b].Kind {
			return order[a].Kind < order[b].Kind // "buyer" < "seller"
		}
		return order[a].Index < order[b].Index
	})

	// Slot loop: pending messages sent in slot t deliver in slot t+1.
	pending := make(map[NodeRef][]WireMsg)
	for slot := 1; slot <= h.cfg.MaxSlots; slot++ {
		slotStart := hm.slotTimer()
		slotSpan := h.cfg.Flight.Start(root.Context(), "wire.slot")
		tickTrace := ""
		if slotSpan.Active() {
			cur = slotSpan.Context()
			tickTrace = trace.FormatTraceparent(cur)
		}
		relayed := 0
		for _, ref := range order {
			inbox := pending[ref]
			delete(pending, ref)
			if err := nodes[ref].write(frame{Tick: &Tick{Slot: slot, Inbox: inbox, Trace: tickTrace}}); err != nil {
				return report, fmt.Errorf("wire: tick %v: %w", ref, err)
			}
		}
		allIdle := true
		for _, ref := range order {
			f, err := nodes[ref].read()
			if err != nil || f.EndSlot == nil {
				if err == nil {
					err = fmt.Errorf("expected end-slot")
				}
				return report, fmt.Errorf("wire: end-slot from %v: %w", ref, err)
			}
			if !f.EndSlot.Idle {
				allIdle = false
			}
			for _, wm := range f.EndSlot.Outbox {
				pending[wm.To] = append(pending[wm.To], wm)
				report.Messages++
				relayed++
				hm.onRelay(wm)
			}
		}
		report.Slots = slot
		hm.observeSlot(slotStart)
		if slotSpan.Active() {
			slotSpan.Annotate("slot=" + itoa(slot) + " relayed=" + itoa(relayed))
		}
		slotSpan.End()
		cur = root.Context()
		if allIdle && len(pending) == 0 {
			break
		}
	}

	// Collect final state.
	mu := matching.New(h.numSellers, h.numBuyers)
	buyerView := make([]int, h.numBuyers)
	coalitions := make([][]int, h.numSellers)
	for _, ref := range order {
		if err := nodes[ref].write(frame{Done: &Done{}}); err != nil {
			return report, fmt.Errorf("wire: done %v: %w", ref, err)
		}
	}
	for _, ref := range order {
		f, err := nodes[ref].read()
		if err != nil || f.Final == nil {
			if err == nil {
				err = fmt.Errorf("expected final")
			}
			return report, fmt.Errorf("wire: final from %v: %w", ref, err)
		}
		switch ref.Kind {
		case "buyer":
			buyerView[ref.Index] = f.Final.MatchedTo
		case "seller":
			coalitions[ref.Index] = f.Final.Coalition
		}
	}
	for i, coalition := range coalitions {
		for _, j := range coalition {
			if j >= 0 && j < h.numBuyers && buyerView[j] == i {
				if err := mu.Assign(i, j); err != nil {
					return report, fmt.Errorf("wire: assembling matching: %w", err)
				}
			}
		}
	}
	report.Matching = mu
	report.Welfare = matching.Welfare(m, mu)
	if root.Active() {
		root.Annotate(fmt.Sprintf("slots=%d messages=%d welfare=%.6g", report.Slots, report.Messages, report.Welfare))
	}
	return report, nil
}
