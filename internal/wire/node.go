package wire

import (
	"fmt"
	"net"
	"time"

	"specmatch/internal/agent"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/simnet"
)

// NodeConfig tunes a node process.
type NodeConfig struct {
	// Agent configures the protocol state machine (transition rules etc.);
	// its network settings are ignored — TCP is the network. Its Metrics and
	// Events fields are honored: the wrapped state machine reports the same
	// agent.* metrics as the simulated runners.
	Agent agent.Config
	// IOTimeout bounds each read/write; zero means 10s.
	IOTimeout time.Duration

	// Metrics, when non-nil, receives wire-level node instrumentation:
	// encode/decode failures (wire.errors.encode, wire.errors.decode) and
	// I/O deadline failures (wire.errors.io). Nil disables it.
	Metrics *obs.Registry
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.IOTimeout == 0 {
		c.IOTimeout = 10 * time.Second
	}
	return c
}

// RunBuyerNode dials the hub and runs buyer j's state machine until the hub
// announces completion. It returns the seller the buyer ended up holding,
// or market.Unmatched.
func RunBuyerNode(addr string, j int, m *market.Market, cfg NodeConfig) (int, error) {
	cfg = cfg.withDefaults()
	node := agent.NewBuyerNode(j, m, cfg.Agent)
	final := Final{Node: NodeRef{Kind: "buyer", Index: j}}
	err := runNode(addr, final.Node, cfg.IOTimeout, newNodeMetrics(cfg.Metrics),
		func(msg simnet.Message) { node.Deliver(msg) },
		func(now int) ([]simnet.Message, bool, error) {
			out := node.Tick(now)
			return out, node.Idle(), nil
		},
		func() Final {
			final.MatchedTo = node.MatchedTo()
			return final
		},
	)
	if err != nil {
		return market.Unmatched, err
	}
	return node.MatchedTo(), nil
}

// RunSellerNode dials the hub and runs seller i's state machine until the
// hub announces completion. It returns the seller's final coalition.
func RunSellerNode(addr string, i int, m *market.Market, cfg NodeConfig) ([]int, error) {
	cfg = cfg.withDefaults()
	node := agent.NewSellerNode(i, m, cfg.Agent)
	final := Final{Node: NodeRef{Kind: "seller", Index: i}}
	err := runNode(addr, final.Node, cfg.IOTimeout, newNodeMetrics(cfg.Metrics),
		func(msg simnet.Message) { node.Deliver(msg) },
		func(now int) ([]simnet.Message, bool, error) {
			out, err := node.Tick(now)
			return out, node.Quiescent(), err
		},
		func() Final {
			final.Coalition = node.Coalition()
			return final
		},
	)
	if err != nil {
		return nil, err
	}
	return node.Coalition(), nil
}

// runNode is the shared hub-side loop of both node kinds.
func runNode(
	addr string,
	self NodeRef,
	timeout time.Duration,
	nm *nodeMetrics,
	deliver func(simnet.Message),
	tick func(now int) (out []simnet.Message, idle bool, err error),
	finalState func() Final,
) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: node dial: %w", err)
	}
	defer func() { _ = raw.Close() }()
	nc := &conn{c: raw, timeout: timeout, ioErrs: nm.ioErrCounter()}

	if err := nc.write(frame{Hello: &Hello{Node: self}}); err != nil {
		return fmt.Errorf("wire: node hello: %w", err)
	}
	for {
		f, err := nc.read()
		if err != nil {
			return fmt.Errorf("wire: node read: %w", err)
		}
		switch {
		case f.Tick != nil:
			for _, wm := range f.Tick.Inbox {
				msg, err := DecodeMsg(wm)
				if err != nil {
					nm.onDecodeError()
					return err
				}
				deliver(msg)
			}
			out, idle, err := tick(f.Tick.Slot)
			if err != nil {
				return err
			}
			end := EndSlot{Idle: idle}
			for _, msg := range out {
				wm, err := EncodeMsg(msg)
				if err != nil {
					nm.onEncodeError()
					return err
				}
				end.Outbox = append(end.Outbox, wm)
			}
			if err := nc.write(frame{EndSlot: &end}); err != nil {
				return fmt.Errorf("wire: node end-slot: %w", err)
			}
		case f.Done != nil:
			final := finalState()
			if err := nc.write(frame{Final: &final}); err != nil {
				return fmt.Errorf("wire: node final: %w", err)
			}
			return nil
		default:
			return fmt.Errorf("wire: node received unexpected frame")
		}
	}
}

// MatchOverTCP runs the full market over real localhost TCP: it starts a
// hub and one goroutine per participant, each with its own connection, and
// returns the hub's report. This is the integration entry point; for
// multi-process or multi-host deployment use NewHub, RunBuyerNode and
// RunSellerNode directly (see cmd/specnode).
func MatchOverTCP(m *market.Market, nodeCfg NodeConfig, hubCfg HubConfig) (HubReport, error) {
	hub, err := NewHub(m, hubCfg)
	if err != nil {
		return HubReport{}, err
	}
	addr := hub.Addr()

	type nodeErr struct {
		ref NodeRef
		err error
	}
	errs := make(chan nodeErr, m.M()+m.N())
	for j := 0; j < m.N(); j++ {
		go func(j int) {
			_, err := RunBuyerNode(addr, j, m, nodeCfg)
			errs <- nodeErr{ref: NodeRef{Kind: "buyer", Index: j}, err: err}
		}(j)
	}
	for i := 0; i < m.M(); i++ {
		go func(i int) {
			_, err := RunSellerNode(addr, i, m, nodeCfg)
			errs <- nodeErr{ref: NodeRef{Kind: "seller", Index: i}, err: err}
		}(i)
	}

	report, serveErr := hub.Serve(m)
	var firstNodeErr error
	for k := 0; k < m.M()+m.N(); k++ {
		ne := <-errs
		if ne.err != nil && firstNodeErr == nil {
			firstNodeErr = fmt.Errorf("wire: node %v: %w", ne.ref, ne.err)
		}
	}
	if serveErr != nil {
		return report, serveErr
	}
	return report, firstNodeErr
}
