package wire

import (
	"fmt"
	"net"
	"time"

	"specmatch/internal/agent"
	"specmatch/internal/market"
	"specmatch/internal/obs"
	"specmatch/internal/simnet"
	"specmatch/internal/trace"
)

// NodeConfig tunes a node process.
type NodeConfig struct {
	// Agent configures the protocol state machine (transition rules etc.);
	// its network settings are ignored — TCP is the network. Its Metrics and
	// Events fields are honored: the wrapped state machine reports the same
	// agent.* metrics as the simulated runners.
	Agent agent.Config
	// IOTimeout bounds each read/write; zero means 10s.
	IOTimeout time.Duration

	// Metrics, when non-nil, receives wire-level node instrumentation:
	// encode/decode failures (wire.errors.encode, wire.errors.decode) and
	// I/O deadline failures (wire.errors.io). Nil disables it.
	Metrics *obs.Registry

	// Flight, when non-nil, records node-side causal spans: wire.tick per
	// hub slot (parented on the Tick frame's traceparent, so they join the
	// hub's trace), agent.handle per delivered message, and wire.send /
	// wire.recv per frame. Defaults to Agent.Flight, so setting either knob
	// traces the whole node.
	Flight *trace.Flight
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.IOTimeout == 0 {
		c.IOTimeout = 10 * time.Second
	}
	if c.Flight == nil {
		c.Flight = c.Agent.Flight
	}
	return c
}

// RunBuyerNode dials the hub and runs buyer j's state machine until the hub
// announces completion. It returns the seller the buyer ended up holding,
// or market.Unmatched.
func RunBuyerNode(addr string, j int, m *market.Market, cfg NodeConfig) (int, error) {
	cfg = cfg.withDefaults()
	agentCfg := cfg.Agent
	agentCfg.Flight = cfg.Flight
	node := agent.NewBuyerNode(j, m, agentCfg)
	final := Final{Node: NodeRef{Kind: "buyer", Index: j}}
	err := runNode(addr, final.Node, cfg.IOTimeout, cfg.Flight, newNodeMetrics(cfg.Metrics),
		func(msg simnet.Message, sc trace.SpanContext) { node.DeliverTraced(msg, sc) },
		func(now int) ([]simnet.Message, bool, error) {
			out := node.Tick(now)
			return out, node.Idle(), nil
		},
		func() Final {
			final.MatchedTo = node.MatchedTo()
			return final
		},
	)
	if err != nil {
		return market.Unmatched, err
	}
	return node.MatchedTo(), nil
}

// RunSellerNode dials the hub and runs seller i's state machine until the
// hub announces completion. It returns the seller's final coalition.
func RunSellerNode(addr string, i int, m *market.Market, cfg NodeConfig) ([]int, error) {
	cfg = cfg.withDefaults()
	agentCfg := cfg.Agent
	agentCfg.Flight = cfg.Flight
	node := agent.NewSellerNode(i, m, agentCfg)
	final := Final{Node: NodeRef{Kind: "seller", Index: i}}
	err := runNode(addr, final.Node, cfg.IOTimeout, cfg.Flight, newNodeMetrics(cfg.Metrics),
		func(msg simnet.Message, sc trace.SpanContext) { node.DeliverTraced(msg, sc) },
		func(now int) ([]simnet.Message, bool, error) {
			out, err := node.Tick(now)
			return out, node.Quiescent(), err
		},
		func() Final {
			final.Coalition = node.Coalition()
			return final
		},
	)
	if err != nil {
		return nil, err
	}
	return node.Coalition(), nil
}

// runNode is the shared hub-side loop of both node kinds.
func runNode(
	addr string,
	self NodeRef,
	timeout time.Duration,
	fl *trace.Flight,
	nm *nodeMetrics,
	deliver func(simnet.Message, trace.SpanContext),
	tick func(now int) (out []simnet.Message, idle bool, err error),
	finalState func() Final,
) error {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("wire: node dial: %w", err)
	}
	defer func() { _ = raw.Close() }()
	// cur parents the node's frame spans: the current wire.tick span during
	// a slot, zero outside one. The loop is single-goroutine.
	var cur trace.SpanContext
	nc := &conn{c: raw, timeout: timeout, ioErrs: nm.ioErrCounter(),
		fl: fl, parent: func() trace.SpanContext { return cur }}

	if err := nc.write(frame{Hello: &Hello{Node: self}}); err != nil {
		return fmt.Errorf("wire: node hello: %w", err)
	}
	for {
		f, err := nc.read()
		if err != nil {
			return fmt.Errorf("wire: node read: %w", err)
		}
		switch {
		case f.Tick != nil:
			// Parent this slot's work on the hub's wire.slot span when the
			// Tick carries one, so every node's spans join the hub's trace.
			parent, _ := trace.ParseTraceparent(f.Tick.Trace)
			tickSpan := fl.Start(parent, "wire.tick")
			cur = tickSpan.Context()
			for _, wm := range f.Tick.Inbox {
				msg, err := DecodeMsg(wm)
				if err != nil {
					nm.onDecodeError()
					return err
				}
				// A message annotated with its sender's span context is
				// handled under that context; otherwise under the tick.
				msgParent := cur
				if sc, ok := trace.ParseTraceparent(wm.Trace); ok {
					msgParent = sc
				}
				deliver(msg, msgParent)
			}
			out, idle, err := tick(f.Tick.Slot)
			if err != nil {
				return err
			}
			outTrace := ""
			if tickSpan.Active() {
				outTrace = trace.FormatTraceparent(cur)
			}
			end := EndSlot{Idle: idle}
			for _, msg := range out {
				wm, err := EncodeMsg(msg)
				if err != nil {
					nm.onEncodeError()
					return err
				}
				wm.Trace = outTrace
				end.Outbox = append(end.Outbox, wm)
			}
			if err := nc.write(frame{EndSlot: &end}); err != nil {
				return fmt.Errorf("wire: node end-slot: %w", err)
			}
			if tickSpan.Active() {
				tickSpan.Annotate("node=" + self.Kind + "#" + itoa(self.Index) +
					" slot=" + itoa(f.Tick.Slot) + " in=" + itoa(len(f.Tick.Inbox)) + " out=" + itoa(len(end.Outbox)))
			}
			tickSpan.End()
			cur = trace.SpanContext{}
		case f.Done != nil:
			final := finalState()
			if err := nc.write(frame{Final: &final}); err != nil {
				return fmt.Errorf("wire: node final: %w", err)
			}
			return nil
		default:
			return fmt.Errorf("wire: node received unexpected frame")
		}
	}
}

// MatchOverTCP runs the full market over real localhost TCP: it starts a
// hub and one goroutine per participant, each with its own connection, and
// returns the hub's report. This is the integration entry point; for
// multi-process or multi-host deployment use NewHub, RunBuyerNode and
// RunSellerNode directly (see cmd/specnode).
func MatchOverTCP(m *market.Market, nodeCfg NodeConfig, hubCfg HubConfig) (HubReport, error) {
	hub, err := NewHub(m, hubCfg)
	if err != nil {
		return HubReport{}, err
	}
	addr := hub.Addr()

	type nodeErr struct {
		ref NodeRef
		err error
	}
	errs := make(chan nodeErr, m.M()+m.N())
	for j := 0; j < m.N(); j++ {
		go func(j int) {
			_, err := RunBuyerNode(addr, j, m, nodeCfg)
			errs <- nodeErr{ref: NodeRef{Kind: "buyer", Index: j}, err: err}
		}(j)
	}
	for i := 0; i < m.M(); i++ {
		go func(i int) {
			_, err := RunSellerNode(addr, i, m, nodeCfg)
			errs <- nodeErr{ref: NodeRef{Kind: "seller", Index: i}, err: err}
		}(i)
	}

	report, serveErr := hub.Serve(m)
	var firstNodeErr error
	for k := 0; k < m.M()+m.N(); k++ {
		ne := <-errs
		if ne.err != nil && firstNodeErr == nil {
			firstNodeErr = fmt.Errorf("wire: node %v: %w", ne.ref, ne.err)
		}
	}
	if serveErr != nil {
		return report, serveErr
	}
	return report, firstNodeErr
}
