// Package swap implements the coordinated-exchange stage the paper leaves as
// future work (§III-D): "How to enable such a swap, which requires a
// coordination among different sellers and buyers, is an interesting topic
// for future works."
//
// The paper's counterexample shows the two-stage algorithm's output can be
// strictly dominated by another Nash-stable matching reachable only through
// a *simultaneous* exchange: buyer 2 and buyer 4 trade places across sellers
// b and c, every involved party weakly or strictly gains, yet no unilateral
// move gets there because each buyer blocks the other's destination. This
// package adds that coordination as an optional Stage III:
//
//   - Relocation: a buyer moves alone to a strictly better, compatible
//     channel (re-closing Nash stability after swaps shuffle coalitions).
//   - Pairwise swap: two matched buyers exchange sellers simultaneously.
//     Both buyers must strictly gain, both sellers must weakly gain (the
//     free-market voluntariness condition the paper's example satisfies),
//     and both destinations must be interference-free.
//
// Every applied move strictly increases social welfare, so the improvement
// loop terminates; the result is Nash-stable and two-exchange-stable.
package swap

import (
	"fmt"

	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// Options tunes the improvement loop.
type Options struct {
	// MaxMoves bounds the total applied moves; zero derives M·N + N, far
	// above anything observed (each move strictly increases welfare).
	MaxMoves int

	// DisableRelocations restricts the loop to pure swaps, for ablation.
	DisableRelocations bool
}

// Stats reports what the improvement loop did.
type Stats struct {
	Swaps        int     `json:"swaps"`
	Relocations  int     `json:"relocations"`
	WelfareGain  float64 `json:"welfare_gain"`
	FinalWelfare float64 `json:"final_welfare"`
}

// Improve applies relocations and pairwise swaps to mu (in place) until no
// improving move remains. It requires an interference-free starting
// matching, such as the two-stage algorithm's output.
func Improve(m *market.Market, mu *matching.Matching, opts Options) (Stats, error) {
	maxMoves := opts.MaxMoves
	if maxMoves == 0 {
		maxMoves = m.M()*m.N() + m.N() + 16
	}
	var st Stats
	before := matching.Welfare(m, mu)

	for moves := 0; ; moves++ {
		if moves > maxMoves {
			return st, fmt.Errorf("swap: exceeded %d moves; welfare should have converged", maxMoves)
		}
		if !opts.DisableRelocations && applyRelocation(m, mu) {
			st.Relocations++
			continue
		}
		if applySwap(m, mu) {
			st.Swaps++
			continue
		}
		break
	}

	st.FinalWelfare = matching.Welfare(m, mu)
	st.WelfareGain = st.FinalWelfare - before
	return st, nil
}

// applyRelocation performs the first profitable unilateral move (in buyer
// order, best destination first) and reports whether one was applied.
func applyRelocation(m *market.Market, mu *matching.Matching) bool {
	for j := 0; j < mu.N(); j++ {
		cur := matching.BuyerUtilityIn(m, mu, j)
		best, bestPrice := market.Unmatched, cur
		for i := 0; i < mu.M(); i++ {
			if i == mu.SellerOf(j) {
				continue
			}
			p := m.Price(i, j)
			if p <= bestPrice {
				continue
			}
			if m.Graph(i).ConflictsWith(j, mu.Coalition(i)) {
				continue
			}
			best, bestPrice = i, p
		}
		if best != market.Unmatched {
			// In-range by construction; Assign cannot fail.
			_ = mu.Assign(best, j)
			return true
		}
	}
	return false
}

// applySwap performs the first feasible, all-parties-agreeable pairwise
// exchange (in lexicographic buyer order) and reports whether one was
// applied.
func applySwap(m *market.Market, mu *matching.Matching) bool {
	for j1 := 0; j1 < mu.N(); j1++ {
		i1 := mu.SellerOf(j1)
		if i1 == market.Unmatched {
			continue
		}
		for j2 := j1 + 1; j2 < mu.N(); j2++ {
			i2 := mu.SellerOf(j2)
			if i2 == market.Unmatched || i2 == i1 {
				continue
			}
			if !swapImproves(m, mu, j1, i1, j2, i2) {
				continue
			}
			// Detach both, then re-attach crosswise; Assign cannot fail on
			// in-range indices.
			mu.Unassign(j1)
			mu.Unassign(j2)
			_ = mu.Assign(i2, j1)
			_ = mu.Assign(i1, j2)
			return true
		}
	}
	return false
}

// swapImproves checks the four voluntariness and two feasibility conditions
// of exchanging buyers j1 ∈ µ(i1) and j2 ∈ µ(i2).
func swapImproves(m *market.Market, mu *matching.Matching, j1, i1, j2, i2 int) bool {
	// Buyers strictly gain.
	if m.Price(i2, j1) <= m.Price(i1, j1) || m.Price(i1, j2) <= m.Price(i2, j2) {
		return false
	}
	// Sellers weakly gain (the incoming price covers the outgoing one).
	if m.Price(i1, j2) < m.Price(i1, j1) || m.Price(i2, j1) < m.Price(i2, j2) {
		return false
	}
	// Destinations are interference-free once the counterpart has left.
	ok1 := true
	mu.EachMember(i2, func(member int) bool {
		if member != j2 && m.Interferes(i2, j1, member) {
			ok1 = false
			return false
		}
		return true
	})
	if !ok1 {
		return false
	}
	ok2 := true
	mu.EachMember(i1, func(member int) bool {
		if member != j1 && m.Interferes(i1, j2, member) {
			ok2 = false
			return false
		}
		return true
	})
	return ok2
}
