package swap

import (
	"reflect"
	"testing"
	"testing/quick"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/optimal"
	"specmatch/internal/paperexample"
	"specmatch/internal/stability"
)

// TestFixesCounterexample: on the paper's Fig. 4/5 instance, Improve finds
// exactly the swap of buyers 2 and 4 that the paper says the two-stage
// algorithm cannot coordinate, landing on the published better matching.
func TestFixesCounterexample(t *testing.T) {
	m := paperexample.Counterexample()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Improve(m, res.Matching, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps != 1 {
		t.Errorf("swaps = %d, want exactly 1 (buyers 2 and 4)", st.Swaps)
	}
	if st.FinalWelfare != paperexample.CounterexampleImprovedWelfare {
		t.Errorf("final welfare = %v, want %v", st.FinalWelfare, paperexample.CounterexampleImprovedWelfare)
	}
	for i, want := range paperexample.CounterexampleImproved() {
		if got := res.Matching.Coalition(i); !reflect.DeepEqual(got, want) {
			t.Errorf("µ(%d) = %v, want %v", i, got, want)
		}
	}
	if devs := stability.CheckNashStable(m, res.Matching); len(devs) != 0 {
		t.Errorf("swapped matching not Nash-stable: %v", devs)
	}
}

// TestNoOpOnToy: the toy's final matching admits no agreeable swap or
// relocation; Improve must leave it alone.
func TestNoOpOnToy(t *testing.T) {
	m := paperexample.Toy()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := res.Matching.Clone()
	st, err := Improve(m, res.Matching, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps != 0 || st.Relocations != 0 || st.WelfareGain != 0 {
		t.Errorf("expected a no-op, got %+v", st)
	}
	if !res.Matching.Equal(before) {
		t.Error("no-op still mutated the matching")
	}
}

// TestImproveProperties: across random markets, Improve never reduces
// welfare, never breaks feasibility, preserves Nash stability, never
// exceeds the optimum, and never makes any individual buyer worse off.
func TestImproveProperties(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		m, err := market.Generate(market.Config{Sellers: 2 + int(seed%5), Buyers: 8 + int(seed%20), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		beforeWelfare := res.Welfare
		beforeUtil := make([]float64, m.N())
		for j := range beforeUtil {
			beforeUtil[j] = matching.BuyerUtilityIn(m, res.Matching, j)
		}

		st, err := Improve(m, res.Matching, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.FinalWelfare < beforeWelfare-1e-9 {
			t.Errorf("seed %d: welfare dropped %v → %v", seed, beforeWelfare, st.FinalWelfare)
		}
		for j := range beforeUtil {
			if after := matching.BuyerUtilityIn(m, res.Matching, j); after < beforeUtil[j]-1e-9 {
				t.Errorf("seed %d: buyer %d worse off after swaps: %v → %v", seed, j, beforeUtil[j], after)
			}
		}
		rep := stability.Check(m, res.Matching)
		if !rep.InterferenceFree || !rep.IndividuallyRational || !rep.NashStable {
			t.Errorf("seed %d: %v", seed, rep)
		}
	}
}

// TestImproveBoundedByOptimal: on small markets the improved welfare stays
// at or below the exact optimum.
func TestImproveBoundedByOptimal(t *testing.T) {
	f := func(seed int64) bool {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 8, Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Run(m, core.Options{})
		if err != nil {
			return false
		}
		st, err := Improve(m, res.Matching, Options{})
		if err != nil {
			return false
		}
		_, opt, err := optimal.Solve(m, optimal.Options{})
		if err != nil {
			return false
		}
		return st.FinalWelfare <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSwapsOnlyMode: with relocations disabled, the counterexample swap is
// still found (it needs no relocation).
func TestSwapsOnlyMode(t *testing.T) {
	m := paperexample.Counterexample()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Improve(m, res.Matching, Options{DisableRelocations: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Swaps != 1 || st.Relocations != 0 {
		t.Errorf("stats = %+v, want 1 swap and 0 relocations", st)
	}
}

// TestMaxMovesGuard: a 0-budget... MaxMoves=1 permits probing but catches a
// runaway loop shape; with a tiny budget on a market that needs moves, the
// guard must fire as an error rather than loop forever.
func TestMaxMovesGuard(t *testing.T) {
	m := paperexample.Counterexample()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The counterexample needs 1 swap, then one more scan pass to conclude.
	// MaxMoves=1 allows the probe move but errors before convergence can be
	// confirmed only if the loop would keep finding moves; on this instance
	// 1 move + final scan fits, so use an artificial zero-ish budget via a
	// matching that still has relocations pending.
	mu := res.Matching.Clone()
	mu.Unassign(0) // force a pending relocation for buyer 0
	if _, err := Improve(m, mu, Options{MaxMoves: 0}); err != nil {
		// MaxMoves 0 means "derive default", so this must succeed.
		t.Fatalf("default budget should converge: %v", err)
	}
}

// TestRelocationRematchesUnmatched: an artificially detached buyer is
// re-seated by the relocation pass when a compatible channel exists.
func TestRelocationRematchesUnmatched(t *testing.T) {
	m := paperexample.Toy()
	res, err := core.Run(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Matching.Unassign(4) // buyer 5 leaves µ(c)
	st, err := Improve(m, res.Matching, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matching.IsMatched(4) {
		t.Error("relocation pass should re-seat the detached buyer")
	}
	if st.Relocations == 0 {
		t.Error("expected at least one relocation")
	}
}
