package auction

import (
	"testing"
	"testing/quick"

	"specmatch/internal/core"
	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/matching"
	"specmatch/internal/paperexample"
	"specmatch/internal/stability"
)

func TestFormGroupsIndependence(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	groups := FormGroups(g)
	seen := make(map[int]bool)
	for _, members := range groups {
		if !g.IsIndependent(members) {
			t.Errorf("group %v is not independent", members)
		}
		for _, v := range members {
			if seen[v] {
				t.Errorf("vertex %d in two groups", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 5 {
		t.Errorf("groups cover %d of 5 vertices", len(seen))
	}
}

func TestFormGroupsCompleteGraph(t *testing.T) {
	groups := FormGroups(graph.Complete(4))
	if len(groups) != 4 {
		t.Errorf("K4 should split into 4 singleton groups, got %d", len(groups))
	}
}

func TestFormGroupsEmptyGraph(t *testing.T) {
	groups := FormGroups(graph.Empty(6))
	if len(groups) != 1 || len(groups[0]) != 6 {
		t.Errorf("edgeless graph should form one group of 6, got %v", groups)
	}
}

func TestRunSimpleMarket(t *testing.T) {
	// One channel, no interference, bids 2/4/6: one group, bid 3×2 = 6,
	// welfare = 12.
	m, err := market.New([][]float64{{2, 4, 6}}, []*graph.Graph{graph.Empty(3)})
	if err != nil {
		t.Fatal(err)
	}
	mu, out, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trades != 1 || out.Welfare != 12 || out.Revenue != 6 {
		t.Errorf("outcome = %+v, want 1 trade, welfare 12, revenue 6", out)
	}
	if mu.MatchedCount() != 3 {
		t.Errorf("matched %d of 3", mu.MatchedCount())
	}
}

func TestRunAsksFilter(t *testing.T) {
	m, err := market.New([][]float64{{2, 4, 6}}, []*graph.Graph{graph.Empty(3)})
	if err != nil {
		t.Fatal(err)
	}
	// Group bid is 6; an ask of 7 kills the trade.
	_, out, err := Run(m, Options{Asks: []float64{7}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trades != 0 || out.Welfare != 0 {
		t.Errorf("outcome = %+v, want no trades above the ask", out)
	}
	if _, _, err := Run(m, Options{Asks: []float64{1, 2}}); err == nil {
		t.Error("mismatched asks length should fail")
	}
}

func TestMcAfeeReductionDropsOneTrade(t *testing.T) {
	// Two channels, two isolated buyers: two singleton trades; the
	// reduction drops the lower-surplus one.
	m, err := market.New(
		[][]float64{{5, 0}, {0, 3}},
		[]*graph.Graph{graph.Empty(2), graph.Empty(2)},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full.Trades != 2 || full.Welfare != 8 {
		t.Fatalf("full outcome = %+v", full)
	}
	mu, reduced, err := Run(m, Options{McAfeeReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Trades != 1 || reduced.Welfare != 5 {
		t.Errorf("reduced outcome = %+v, want the bid-3 trade dropped", reduced)
	}
	if mu.IsMatched(1) {
		t.Error("buyer 1's trade should have been reduced away")
	}
}

// TestAuctionFeasibleProperty: the auction's allocation is always a valid,
// interference-free matching whose welfare the matching package agrees on.
func TestAuctionFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 20, Seed: seed})
		if err != nil {
			return false
		}
		mu, out, err := Run(m, Options{})
		if err != nil {
			return false
		}
		if mu.Validate() != nil {
			return false
		}
		if len(stability.CheckInterferenceFree(m, mu)) != 0 {
			return false
		}
		diff := out.Welfare - matching.Welfare(m, mu)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMatchingBeatsAuctionOnAverage quantifies the paper's qualitative
// argument: on its own market model, per-buyer matching extracts more
// welfare than group-based double-auction allocation, whose min-bid ×
// size group bids and exclusive groups leave value on the table.
func TestMatchingBeatsAuctionOnAverage(t *testing.T) {
	var matchSum, auctionSum float64
	const runs = 60
	for seed := int64(0); seed < runs; seed++ {
		m, err := market.Generate(market.Config{Sellers: 5, Buyers: 40, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(m, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, out, err := Run(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		matchSum += res.Welfare
		auctionSum += out.Welfare
	}
	if matchSum <= auctionSum {
		t.Errorf("matching welfare %.2f should exceed auction welfare %.2f on average", matchSum, auctionSum)
	}
	t.Logf("matching %.2f vs auction %.2f (ratio %.3f)", matchSum, auctionSum, auctionSum/matchSum)
}

// TestAuctionOnToy: the toy market clears sensibly and below the matching's
// welfare of 30.
func TestAuctionOnToy(t *testing.T) {
	m := paperexample.Toy()
	mu, out, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Welfare <= 0 || out.Welfare > 33 {
		t.Errorf("auction welfare = %v, want in (0, 33]", out.Welfare)
	}
	if v := stability.CheckInterferenceFree(m, mu); len(v) != 0 {
		t.Errorf("interference: %v", v)
	}
}

// TestGroupBidTruthfulnessShape: lowering one member's bid below the group
// minimum can only lower the group bid — the monotonicity behind the
// mechanism's truthfulness.
func TestGroupBidTruthfulnessShape(t *testing.T) {
	base := [][]float64{{4, 6, 8}}
	g := []*graph.Graph{graph.Empty(3)}
	m1, err := market.New(base, g)
	if err != nil {
		t.Fatal(err)
	}
	bid1, _ := groupBid(m1, 0, []int{0, 1, 2})
	m2, err := market.New([][]float64{{2, 6, 8}}, g)
	if err != nil {
		t.Fatal(err)
	}
	bid2, _ := groupBid(m2, 0, []int{0, 1, 2})
	if bid2 >= bid1 {
		t.Errorf("lowering the min bid raised the group bid: %v → %v", bid1, bid2)
	}
}

// TestBudgetBalance: the auctioneer never runs a deficit, and every money
// flow reconciles: revenue = seller income + surplus; buyer payments =
// revenue; buyer surplus = welfare − revenue.
func TestBudgetBalance(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		m, err := market.Generate(market.Config{Sellers: 4, Buyers: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		asks := make([]float64, m.M())
		for i := range asks {
			asks[i] = 0.1 * float64(i)
		}
		mu, out, err := Run(m, Options{Asks: asks})
		if err != nil {
			t.Fatal(err)
		}
		if out.AuctioneerSurplus < -1e-9 {
			t.Errorf("seed %d: auctioneer deficit %v", seed, out.AuctioneerSurplus)
		}
		if diff := out.Revenue - out.SellerIncome - out.AuctioneerSurplus; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("seed %d: revenue split does not reconcile (%v)", seed, diff)
		}
		var paid float64
		for _, charge := range Payments(m, mu) {
			paid += charge
		}
		if diff := paid - out.Revenue; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("seed %d: buyer payments %v != revenue %v", seed, paid, out.Revenue)
		}
		if diff := out.BuyerSurplus - (out.Welfare - out.Revenue); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("seed %d: buyer surplus does not reconcile (%v)", seed, diff)
		}
		if out.BuyerSurplus < -1e-9 {
			t.Errorf("seed %d: negative buyer surplus %v (uniform price above someone's value)", seed, out.BuyerSurplus)
		}
	}
}

// TestPaymentsUniformInGroup: every member of a winning coalition pays the
// same (the group minimum).
func TestPaymentsUniformInGroup(t *testing.T) {
	m, err := market.New([][]float64{{2, 4, 6}}, []*graph.Graph{graph.Empty(3)})
	if err != nil {
		t.Fatal(err)
	}
	mu, _, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pay := Payments(m, mu)
	for j, charge := range pay {
		if charge != 2 {
			t.Errorf("buyer %d pays %v, want the group minimum 2", j, charge)
		}
	}
	if len(pay) != 3 {
		t.Errorf("payments cover %d buyers, want 3", len(pay))
	}
}
