// Package auction implements a group-based truthful double spectrum auction
// in the style of TRUST (Zhou & Zheng, INFOCOM 2009), adapted to
// heterogeneous channels in the spirit of TAHES/TAMES — the mechanism family
// the paper positions spectrum matching *against*. The paper argues
// qualitatively that double auctions need a trusted auctioneer and sacrifice
// efficiency to achieve truthfulness; this baseline makes the efficiency
// half of that argument measurable on the same market model.
//
// Mechanism outline (the classic group-based design):
//
//  1. Per channel, buyers are partitioned into interference-free groups
//     *bid-independently* (greedy coloring in fixed vertex order), so no
//     buyer can manipulate her grouping.
//  2. A group's bid for a channel is |group| × (minimum member bid) — the
//     classic uniform-price group bid that makes truthful bidding a
//     dominant strategy inside a group.
//  3. Groups are matched to channels greedily by descending group bid,
//     subject to each buyer winning at most one channel and the group bid
//     clearing the channel's ask.
//  4. Optionally, a McAfee-style trade reduction removes the
//     lowest-surplus trade, which is what buys truthfulness on the
//     channel/group boundary at a further efficiency cost.
//
// The auctioneer here is exactly the centralized third party the paper
// wants to remove; the point of the baseline is the welfare comparison in
// the ablation harness, not a new mechanism.
package auction

import (
	"fmt"
	"sort"

	"specmatch/internal/graph"
	"specmatch/internal/market"
	"specmatch/internal/matching"
)

// Options tunes the auction.
type Options struct {
	// Asks are per-channel seller reserve prices; nil means all zeros
	// (matching the paper's market, where sellers have no reserves).
	Asks []float64
	// McAfeeReduction drops the lowest-surplus winning trade, the classic
	// price-setting sacrifice for truthfulness across the trade boundary.
	McAfeeReduction bool
}

// Outcome reports the auction result, including the money flows that make
// the mechanism's budget balance auditable.
type Outcome struct {
	// Welfare is the sum of winning buyers' true valuations — directly
	// comparable to matching.Welfare on the same market.
	Welfare float64 `json:"welfare"`
	// Revenue is the total payment collected from winning groups (each
	// group pays its group bid, split uniformly so every member pays the
	// group's minimum bid — the classic TRUST charge).
	Revenue float64 `json:"revenue"`
	// SellerIncome is the total paid out to sellers: each winning channel's
	// ask. With zero asks (the paper's market has no reserves) sellers are
	// paid nothing by the auctioneer, and the entire revenue is retained.
	SellerIncome float64 `json:"seller_income"`
	// AuctioneerSurplus = Revenue − SellerIncome; non-negative by
	// construction (trades only clear at bid ≥ ask), which is the budget
	// balance truthful double auctions guarantee.
	AuctioneerSurplus float64 `json:"auctioneer_surplus"`
	// BuyerSurplus is Σ (true value − payment) over winners: what buyers
	// keep after paying the uniform group price.
	BuyerSurplus float64 `json:"buyer_surplus"`
	// Trades counts (channel, group) pairs that cleared.
	Trades int `json:"trades"`
	// GroupedBuyers counts buyers placed into groups (before winning).
	GroupedBuyers int `json:"grouped_buyers"`
}

// Payments returns each winning buyer's charge under mu: members of a
// winning group each pay the group's minimum bid (the uniform price that
// makes in-group truthfulness a dominant strategy). Keys are buyer indices.
func Payments(m *market.Market, mu *matching.Matching) map[int]float64 {
	out := make(map[int]float64)
	for i := 0; i < mu.M(); i++ {
		coalition := mu.Coalition(i)
		if len(coalition) == 0 {
			continue
		}
		minBid := m.Price(i, coalition[0])
		for _, j := range coalition[1:] {
			if p := m.Price(i, j); p < minBid {
				minBid = p
			}
		}
		for _, j := range coalition {
			out[j] = minBid
		}
	}
	return out
}

// FormGroups partitions vertices into interference-free groups by greedy
// coloring in ascending vertex order. The partition depends only on the
// graph, never on bids, which is what makes the group stage strategy-proof.
func FormGroups(g *graph.Graph) [][]int {
	var groups [][]int
	for v := 0; v < g.N(); v++ {
		placed := false
		for gi, members := range groups {
			if !g.ConflictsWith(v, members) {
				groups[gi] = append(members, v)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []int{v})
		}
	}
	return groups
}

// groupBid is |group| × min member bid, the uniform-price truthful group
// valuation. Zero-bid members are excluded from the group for bidding (they
// would zero the whole group).
func groupBid(m *market.Market, channel int, members []int) (bid float64, bidders []int) {
	bidders = make([]int, 0, len(members))
	minBid := 0.0
	for _, j := range members {
		p := m.Price(channel, j)
		if p <= 0 {
			continue
		}
		if len(bidders) == 0 || p < minBid {
			minBid = p
		}
		bidders = append(bidders, j)
	}
	if len(bidders) == 0 {
		return 0, nil
	}
	return float64(len(bidders)) * minBid, bidders
}

// trade is one candidate (channel, group) pairing.
type trade struct {
	channel int
	members []int
	bid     float64
}

// Run executes the auction and returns the allocation as a Matching plus
// the economic outcome.
func Run(m *market.Market, opts Options) (*matching.Matching, Outcome, error) {
	asks := opts.Asks
	if asks == nil {
		asks = make([]float64, m.M())
	}
	if len(asks) != m.M() {
		return nil, Outcome{}, fmt.Errorf("auction: %d asks for %d channels", len(asks), m.M())
	}

	var out Outcome

	// Stage 1–2: bid-independent grouping and group bids, per channel.
	candidates := make([]trade, 0, m.M()*4)
	grouped := make(map[int]struct{})
	for i := 0; i < m.M(); i++ {
		for _, members := range FormGroups(m.Graph(i)) {
			bid, bidders := groupBid(m, i, members)
			if bid <= 0 {
				continue
			}
			for _, j := range bidders {
				grouped[j] = struct{}{}
			}
			candidates = append(candidates, trade{channel: i, members: bidders, bid: bid})
		}
	}
	out.GroupedBuyers = len(grouped)

	// Stage 3: clear greedily by descending group bid (ties: smaller
	// channel, then smaller first member), one channel per group-win, one
	// channel per buyer.
	sort.Slice(candidates, func(a, b int) bool {
		if candidates[a].bid != candidates[b].bid {
			return candidates[a].bid > candidates[b].bid
		}
		if candidates[a].channel != candidates[b].channel {
			return candidates[a].channel < candidates[b].channel
		}
		return candidates[a].members[0] < candidates[b].members[0]
	})

	mu := matching.New(m.M(), m.N())
	channelTaken := make([]bool, m.M())
	var winners []trade
	for _, c := range candidates {
		if channelTaken[c.channel] || c.bid < asks[c.channel] {
			continue
		}
		free := true
		for _, j := range c.members {
			if mu.IsMatched(j) {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		channelTaken[c.channel] = true
		for _, j := range c.members {
			if err := mu.Assign(c.channel, j); err != nil {
				return nil, Outcome{}, fmt.Errorf("auction: assigning buyer %d: %w", j, err)
			}
		}
		winners = append(winners, c)
	}

	// Stage 4: optional McAfee-style reduction of the lowest-surplus trade.
	if opts.McAfeeReduction && len(winners) > 0 {
		worst := 0
		worstSurplus := winners[0].bid - asks[winners[0].channel]
		for k, w := range winners[1:] {
			if s := w.bid - asks[w.channel]; s < worstSurplus {
				worst, worstSurplus = k+1, s
			}
		}
		for _, j := range winners[worst].members {
			mu.Unassign(j)
		}
		winners = append(winners[:worst], winners[worst+1:]...)
	}

	for _, w := range winners {
		out.Trades++
		out.Revenue += w.bid
		out.SellerIncome += asks[w.channel]
		for _, j := range w.members {
			out.Welfare += m.Price(w.channel, j)
		}
	}
	out.AuctioneerSurplus = out.Revenue - out.SellerIncome
	for j, charge := range Payments(m, mu) {
		i := mu.SellerOf(j)
		out.BuyerSurplus += m.Price(i, j) - charge
	}
	return mu, out, nil
}
