package specmatch_test

import (
	"testing"

	"specmatch"
	"specmatch/internal/agent"
	"specmatch/internal/core"
	"specmatch/internal/experiment"
	"specmatch/internal/market"
	"specmatch/internal/mwis"
	"specmatch/internal/optimal"
	"specmatch/internal/wire"
)

// Figure benchmarks. Each iteration regenerates one full panel of the
// paper's evaluation through the experiment harness and reports the panel's
// headline quantity as a custom metric, so `go test -bench=.` both times the
// harness and reprints the paper's numbers. EXPERIMENTS.md records the
// full-replication series produced by cmd/specbench.

// benchFigure runs one catalog experiment per iteration.
func benchFigure(b *testing.B, id string, reps int, metric func(*experiment.Figure) (string, float64)) {
	b.Helper()
	spec, ok := experiment.Catalog()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var fig *experiment.Figure
	for n := 0; n < b.N; n++ {
		var err error
		fig, err = spec.Run(experiment.RunConfig{Seed: 1, Reps: reps})
		if err != nil {
			b.Fatal(err)
		}
	}
	if fig != nil && metric != nil {
		name, v := metric(fig)
		b.ReportMetric(v, name)
	}
}

// ratioMetric reports mean proposed/optimal welfare across a Fig. 6 panel —
// the paper's headline "more than 90% of the optimal social welfare".
func ratioMetric(fig *experiment.Figure) (string, float64) {
	var sum float64
	for k := range fig.Points {
		sum += fig.Value(k, experiment.SeriesProposed) / fig.Value(k, experiment.SeriesOptimal)
	}
	return "ratio", sum / float64(len(fig.Points))
}

// finalWelfareMetric reports total welfare at the last sweep point.
func finalWelfareMetric(fig *experiment.Figure) (string, float64) {
	return "welfare", fig.Value(len(fig.Points)-1, experiment.SeriesPhase2)
}

// stageIRoundsMetric reports Stage I rounds at the last sweep point.
func stageIRoundsMetric(fig *experiment.Figure) (string, float64) {
	return "rounds", fig.Value(len(fig.Points)-1, experiment.SeriesStageI)
}

func BenchmarkFig6a(b *testing.B) { benchFigure(b, "6a", 10, ratioMetric) }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "6b", 10, ratioMetric) }
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "6c", 10, ratioMetric) }
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "7a", 3, finalWelfareMetric) }
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "7b", 3, finalWelfareMetric) }
func BenchmarkFig7c(b *testing.B) { benchFigure(b, "7c", 3, finalWelfareMetric) }
func BenchmarkFig8a(b *testing.B) { benchFigure(b, "8a", 3, stageIRoundsMetric) }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "8b", 3, stageIRoundsMetric) }
func BenchmarkFig8c(b *testing.B) { benchFigure(b, "8c", 3, stageIRoundsMetric) }

func BenchmarkAblationMWIS(b *testing.B) {
	benchFigure(b, "ablation-mwis", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "gwmin/exact", last.Values["gwmin"].Mean / last.Values["exact"].Mean
	})
}

func BenchmarkAblationStage2(b *testing.B) {
	benchFigure(b, "ablation-stage2", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "stage2gain", last.Values["full"].Mean - last.Values["stage I only"].Mean
	})
}

func BenchmarkAblationAsync(b *testing.B) {
	benchFigure(b, "ablation-async", 2, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "slots-saved", last.Values["default slots"].Mean - last.Values["rule-ii slots"].Mean
	})
}

func BenchmarkAblationSwap(b *testing.B) {
	benchFigure(b, "ablation-swap", 5, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "swapgain", last.Values["+ swaps"].Mean - last.Values["two-stage"].Mean
	})
}

func BenchmarkAblationAuction(b *testing.B) {
	benchFigure(b, "ablation-auction", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "match/auction", last.Values["matching"].Mean / last.Values["auction"].Mean
	})
}

func BenchmarkAblationOnline(b *testing.B) {
	benchFigure(b, "ablation-online", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "inc/fresh", last.Values["incremental"].Mean / last.Values["fresh re-run"].Mean
	})
}

func BenchmarkAblationFaults(b *testing.B) {
	benchFigure(b, "ablation-faults", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "lossy/reliable", last.Values["welfare"].Mean / last.Values["welfare (reliable)"].Mean
	})
}

// Component micro-benchmarks.

func benchMarket(b *testing.B, sellers, buyers int) *market.Market {
	b.Helper()
	m, err := market.Generate(market.Config{Sellers: sellers, Buyers: buyers, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkMatchSmall(b *testing.B) {
	m := benchMarket(b, 4, 20)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := core.Run(m, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchMedium(b *testing.B) {
	m := benchMarket(b, 10, 200)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := core.Run(m, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchLarge(b *testing.B) {
	m := benchMarket(b, 16, 500)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := core.Run(m, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Engine-configuration benchmarks at the Fig. 7(b)/8(b) scale (M = 16,
// N = 500): sequential vs parallel fan-out, coalition cache on vs off. All
// four configurations produce bit-identical output, so the deltas here are
// pure engine cost. On a single-core box the Workers axis is flat by
// construction; the cache axis still measures real work avoidance.
func benchEngine(b *testing.B, opts core.Options) {
	b.Helper()
	m := benchMarket(b, 16, 500)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := core.Run(m, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSeqUncached(b *testing.B) {
	benchEngine(b, core.Options{Workers: 1, DisableCoalitionCache: true})
}

func BenchmarkEngineSeqCached(b *testing.B) {
	benchEngine(b, core.Options{Workers: 1})
}

func BenchmarkEngineParUncached(b *testing.B) {
	benchEngine(b, core.Options{Workers: 0, DisableCoalitionCache: true})
}

func BenchmarkEngineParCached(b *testing.B) {
	benchEngine(b, core.Options{Workers: 0})
}

func BenchmarkMatchAsync(b *testing.B) {
	m := benchMarket(b, 5, 40)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := specmatch.MatchAsync(m, specmatch.AsyncConfig{
			BuyerRule:  specmatch.BuyerRuleII,
			SellerRule: specmatch.SellerProbabilistic,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchAsyncConcurrent(b *testing.B) {
	m := benchMarket(b, 5, 40)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := specmatch.MatchAsyncConcurrent(m, specmatch.AsyncConfig{
			BuyerRule:  specmatch.BuyerRuleII,
			SellerRule: specmatch.SellerProbabilistic,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchOverTCP(b *testing.B) {
	m := benchMarket(b, 3, 12)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := wire.MatchOverTCP(m, wire.NodeConfig{
			Agent: agent.Config{BuyerRule: agent.BuyerRuleII, SellerRule: agent.SellerProbabilistic},
		}, wire.HubConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalFig6Scale(b *testing.B) {
	m := benchMarket(b, 6, 10)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, _, err := optimal.Solve(m, optimal.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMWISGreedy(b *testing.B) {
	m := benchMarket(b, 1, 300)
	weights := make([]float64, m.N())
	candidates := make([]int, m.N())
	for j := range weights {
		weights[j] = m.Price(0, j)
		candidates[j] = j
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := mwis.Solve(mwis.GWMIN, m.Graph(0), weights, candidates); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketGeneration(b *testing.B) {
	for n := 0; n < b.N; n++ {
		if _, err := market.Generate(market.Config{Sellers: 10, Buyers: 300, Seed: int64(n)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBundle(b *testing.B) {
	benchFigure(b, "ablation-bundle", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "gap", last.Values["bundle optimum"].Mean - last.Values["matching (bundle value)"].Mean
	})
}

func BenchmarkAblationRadio(b *testing.B) {
	benchFigure(b, "ablation-radio", 5, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "ratio", last.Values["welfare"].Mean / last.Values["optimal"].Mean
	})
}

func BenchmarkAblationOutage(b *testing.B) {
	benchFigure(b, "ablation-outage", 3, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "outage", last.Values["matching outage"].Mean
	})
}

func BenchmarkAblationThresholds(b *testing.B) {
	benchFigure(b, "ablation-thresholds", 2, func(fig *experiment.Figure) (string, float64) {
		last := fig.Points[len(fig.Points)-1]
		return "welfare-ratio", last.Values["welfare ratio"].Mean
	})
}
