module specmatch

go 1.22
