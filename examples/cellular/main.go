// Cellular exercises the dummy-expansion machinery of §II-A on a small-cell
// offload market: wireless carriers with several spare licensed channels
// sell to small-cell operators that each demand several channels. Physical
// participants are expanded into virtual single-channel traders; dummies of
// one operator interfere on every channel so no operator is handed the same
// channel twice.
package main

import (
	"fmt"
	"log"

	"specmatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellular: ")

	// Three carriers owning 3, 2 and 2 spare channels; six small-cell
	// operators demanding 1–3 channels each.
	cfg := specmatch.MarketConfig{
		Sellers:        3,
		Buyers:         6,
		SellerChannels: []int{3, 2, 2},
		BuyerDemands:   []int{2, 3, 1, 2, 1, 3},
		RangeMax:       4,
		Seed:           7,
	}
	m, err := specmatch.GenerateMarket(cfg)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	fmt.Printf("physical market: %d carriers (channels %v) × %d operators (demands %v)\n",
		cfg.Sellers, cfg.SellerChannels, cfg.Buyers, cfg.BuyerDemands)
	fmt.Printf("virtual market after dummy expansion: %d channels × %d single-channel buyers\n\n",
		m.M(), m.N())

	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		log.Fatalf("match: %v", err)
	}
	rep := specmatch.CheckStability(m, res.Matching)
	fmt.Printf("welfare %.3f, %d/%d virtual buyers matched, Nash-stable: %v\n\n",
		res.Welfare, res.Matched, m.N(), rep.NashStable)

	// Fold the virtual matching back to physical participants.
	perOperator := make(map[int][]int)
	for j := 0; j < m.N(); j++ {
		i := res.Matching.SellerOf(j)
		if i == specmatch.Unmatched {
			continue
		}
		op := m.BuyerOwner(j)
		perOperator[op] = append(perOperator[op], i)
	}
	fmt.Println("operator allocations (channel → owning carrier):")
	for op := 0; op < cfg.Buyers; op++ {
		channels := perOperator[op]
		fmt.Printf("  operator %d (wanted %d): got %d channel(s)", op, cfg.BuyerDemands[op], len(channels))
		for _, ch := range channels {
			fmt.Printf("  ch%d→carrier%d", ch, m.SellerOwner(ch))
		}
		fmt.Println()
		// The §II-A constraint: an operator never holds one channel twice.
		seen := make(map[int]bool, len(channels))
		for _, ch := range channels {
			if seen[ch] {
				log.Fatalf("operator %d holds channel %d twice", op, ch)
			}
			seen[ch] = true
		}
	}

	fmt.Println()
	fmt.Println("carrier revenues:")
	for c := 0; c < cfg.Sellers; c++ {
		total := 0.0
		for i := 0; i < m.M(); i++ {
			if m.SellerOwner(i) != c {
				continue
			}
			for _, j := range res.Matching.Coalition(i) {
				total += m.Price(i, j)
			}
		}
		fmt.Printf("  carrier %d: %.3f\n", c, total)
	}
}
