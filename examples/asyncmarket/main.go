// Asyncmarket runs the fully distributed protocol of §IV: buyers and sellers
// as independent agents over a simulated lossy network, deciding locally —
// via the paper's transition rules — when to stop deferred acceptance and
// start transferring. It contrasts the default worst-case schedule with
// rules I/II on completion time, then degrades the network to show the
// protocol surviving message loss.
package main

import (
	"fmt"
	"log"

	"specmatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asyncmarket: ")

	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 4, Buyers: 24, Seed: 99})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	sync, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		log.Fatalf("sync: %v", err)
	}
	fmt.Printf("market: %v — synchronous baseline welfare %.3f\n\n", m, sync.Welfare)

	fmt.Println("transition rules on a reliable network:")
	fmt.Printf("%-28s  %-8s  %-9s  %-18s\n", "rules", "slots", "welfare", "mean buyer transit")
	for _, c := range []struct {
		name string
		cfg  specmatch.AsyncConfig
	}{
		{"default schedule", specmatch.AsyncConfig{}},
		{"rule I + probabilistic", specmatch.AsyncConfig{
			BuyerRule: specmatch.BuyerRuleI, SellerRule: specmatch.SellerProbabilistic}},
		{"rule II + probabilistic", specmatch.AsyncConfig{
			BuyerRule: specmatch.BuyerRuleII, SellerRule: specmatch.SellerProbabilistic}},
	} {
		res, err := specmatch.MatchAsync(m, c.cfg)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("%-28s  %-8d  %-9.3f  slot %.1f (%d/%d early)\n",
			c.name, res.Slots, res.Welfare, res.MeanBuyerTransition,
			res.EarlyBuyerTransitions, m.N())
	}

	fmt.Println()
	fmt.Println("fault injection (rule II, retransmission enabled):")
	fmt.Printf("%-8s  %-8s  %-9s  %-9s  %-8s\n", "drop", "slots", "welfare", "ratio", "dropped")
	for _, drop := range []float64{0, 0.05, 0.15, 0.3} {
		res, err := specmatch.MatchAsync(m, specmatch.AsyncConfig{
			BuyerRule:  specmatch.BuyerRuleII,
			SellerRule: specmatch.SellerProbabilistic,
			Net:        specmatch.NetConfig{DropProb: drop, Seed: 5},
		})
		if err != nil {
			log.Fatalf("drop %v: %v", drop, err)
		}
		if !res.Terminated {
			log.Fatalf("drop %v: protocol did not terminate", drop)
		}
		fmt.Printf("%-8.2f  %-8d  %-9.3f  %-9.3f  %-8d\n",
			drop, res.Slots, res.Welfare, res.Welfare/sync.Welfare, res.Net.Dropped)
	}

	fmt.Println()
	fmt.Println("The protocol keeps terminating and stays interference-free under loss;")
	fmt.Println("retransmission keeps welfare close to the reliable baseline (losing a")
	fmt.Println("proposal reroutes the matching, which can shift welfare either way).")
}
