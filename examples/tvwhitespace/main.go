// Tvwhitespace models the workload that motivates the paper's introduction:
// TV-white-space style dynamic spectrum access, where a few wide-coverage
// licensed channels are redistributed to many small secondary providers.
//
// Wide transmission ranges make the interference graphs dense, so channel
// reuse is scarce and competition fierce — the regime where matching has to
// arbitrate carefully. The example sweeps the range cap to show how reuse
// density drives both welfare and how many buyers can be served, and prints
// each channel's realized coalition.
package main

import (
	"fmt"
	"log"

	"specmatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tvwhitespace: ")

	fmt.Println("TV white space: 6 channels, 120 secondary providers, 10×10 km area")
	fmt.Println()
	fmt.Printf("%-12s  %-10s  %-10s  %-14s\n", "range cap", "welfare", "matched", "mean coalition")

	for _, rangeMax := range []float64{1, 2, 4, 7, 10} {
		m, err := specmatch.GenerateMarket(specmatch.MarketConfig{
			Sellers:  6,
			Buyers:   120,
			RangeMax: rangeMax,
			Seed:     2016,
		})
		if err != nil {
			log.Fatalf("generate: %v", err)
		}
		res, err := specmatch.Match(m, specmatch.MatchOptions{})
		if err != nil {
			log.Fatalf("match: %v", err)
		}
		rep := specmatch.CheckStability(m, res.Matching)
		if !rep.InterferenceFree || !rep.NashStable {
			log.Fatalf("range %v: unstable result: %v", rangeMax, rep)
		}
		fmt.Printf("%-12.1f  %-10.2f  %-10d  %-14.1f\n",
			rangeMax, res.Welfare, res.Matched, float64(res.Matched)/float64(m.M()))
	}

	fmt.Println()
	fmt.Println("Wider ranges mean denser interference: fewer buyers reuse each channel,")
	fmt.Println("so welfare and service counts fall even though demand is unchanged.")
	fmt.Println()

	// Zoom into one market and show the realized coalitions per channel.
	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{
		Sellers: 6, Buyers: 120, RangeMax: 3, Seed: 2016,
	})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		log.Fatalf("match: %v", err)
	}
	fmt.Printf("coalitions at range cap 3 (welfare %.2f):\n", res.Welfare)
	for i := 0; i < m.M(); i++ {
		coalition := res.Matching.Coalition(i)
		rng, _ := m.Range(i)
		revenue := 0.0
		for _, j := range coalition {
			revenue += m.Price(i, j)
		}
		fmt.Printf("  channel %d (range %.2f km): %2d buyers, revenue %.2f\n",
			i, rng, len(coalition), revenue)
	}
}
