// Dynamicmarket exercises the dynamic-market extension: a long-running
// spectrum market where providers arrive when their traffic peaks and leave
// when it ebbs. Each churn batch is absorbed by the incremental Stage II
// repair operator — incumbents keep their channels, newcomers compete
// through transfers and invitations — and the session is compared against a
// full re-run of the two-stage algorithm at every step to show the price of
// never disrupting service.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"specmatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynamicmarket: ")

	m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 5, Buyers: 40, Seed: 11})
	if err != nil {
		log.Fatalf("generate: %v", err)
	}
	session, err := specmatch.NewDynamicSession(m, specmatch.MatchOptions{})
	if err != nil {
		log.Fatalf("session: %v", err)
	}

	r := rand.New(rand.NewSource(8))
	fmt.Println("dynamic spectrum market: 5 channels, 40 providers, 12 churn epochs")
	fmt.Println()
	fmt.Printf("%-6s  %-8s  %-8s  %-8s  %-9s  %-9s  %-7s\n",
		"epoch", "arrive", "depart", "active", "welfare", "fresh", "ratio")

	var incSum, freshSum float64
	for epoch := 1; epoch <= 12; epoch++ {
		var ev specmatch.ChurnEvent
		for j := 0; j < m.N(); j++ {
			if session.Active(j) {
				if r.Float64() < 0.15 {
					ev.Depart = append(ev.Depart, j)
				}
			} else if r.Float64() < 0.35 {
				ev.Arrive = append(ev.Arrive, j)
			}
		}
		st, err := session.Step(ev)
		if err != nil {
			log.Fatalf("epoch %d: %v", epoch, err)
		}
		fresh, err := session.Rebuild(false)
		if err != nil {
			log.Fatalf("epoch %d rebuild: %v", epoch, err)
		}
		incSum += st.Welfare
		freshSum += fresh
		ratio := 1.0
		if fresh > 0 {
			ratio = st.Welfare / fresh
		}
		fmt.Printf("%-6d  %-8d  %-8d  %-8d  %-9.3f  %-9.3f  %-7.3f\n",
			epoch, st.Arrived, st.Departed, session.ActiveCount(), st.Welfare, fresh, ratio)
	}

	fmt.Println()
	fmt.Printf("cumulative: incremental %.2f vs fresh re-runs %.2f (%.1f%%)\n",
		incSum, freshSum, 100*incSum/freshSum)
	fmt.Println("Incremental repair never evicts an incumbent, keeps every stability")
	fmt.Println("guarantee over the active sub-market, and stays within a few percent")
	fmt.Println("of restarting the whole algorithm at every epoch.")
}
