// Auctionduel pits the paper's matching framework against the mechanism it
// replaces: a TRUST-style group-based truthful double auction, run on the
// same markets. The paper's argument against double auctions is
// qualitative — they need a trusted auctioneer and trade efficiency for
// truthfulness; this example makes the efficiency and fairness halves of
// that argument concrete with welfare, service count and Jain's fairness
// index across market sizes.
package main

import (
	"fmt"
	"log"

	"specmatch"
	"specmatch/internal/matching"
	"specmatch/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("auctionduel: ")

	fmt.Println("matching vs group-based double auction (M = 6 channels)")
	fmt.Println()
	fmt.Printf("%-6s  %-18s  %-18s  %-14s  %-14s\n",
		"N", "welfare m / a", "matched m / a", "fairness m", "fairness a")

	for _, n := range []int{30, 60, 120, 240} {
		m, err := specmatch.GenerateMarket(specmatch.MarketConfig{Sellers: 6, Buyers: n, Seed: 77})
		if err != nil {
			log.Fatalf("generate: %v", err)
		}

		res, err := specmatch.Match(m, specmatch.MatchOptions{})
		if err != nil {
			log.Fatalf("match: %v", err)
		}
		muAuction, outcome, err := specmatch.DoubleAuction(m, specmatch.AuctionOptions{})
		if err != nil {
			log.Fatalf("auction: %v", err)
		}

		fairMatch := stats.JainIndex(buyerUtilities(m, res.Matching))
		fairAuction := stats.JainIndex(buyerUtilities(m, muAuction))

		fmt.Printf("%-6d  %7.2f / %-8.2f  %7d / %-8d  %-14.3f  %-14.3f\n",
			n, res.Welfare, outcome.Welfare,
			res.Matched, muAuction.MatchedCount(),
			fairMatch, fairAuction)
	}

	fmt.Println()
	fmt.Println("The matching serves more buyers at higher total welfare: group bids")
	fmt.Println("(size × minimum member bid) discard price heterogeneity, and whole")
	fmt.Println("groups lose together. The auctioneer the auction requires is exactly")
	fmt.Println("the third party the paper's free-market setting removes.")
}

func buyerUtilities(m *specmatch.Market, mu *specmatch.Matching) []float64 {
	out := make([]float64, m.N())
	for j := range out {
		out[j] = matching.BuyerUtilityIn(m, mu, j)
	}
	return out
}
