// Physicalaudit closes the loop between the matching's interference model
// and physics. The algorithm guarantees no two *pairwise-conflicting* buyers
// share a channel, but a real receiver integrates interference from every
// co-channel transmitter at once. This example audits final matchings under
// aggregate SINR (log-distance path loss, range-proportional access links)
// and shows two things:
//
//  1. interference-aware matching slashes outage relative to ignoring
//     interference structure, and
//  2. the residual outage barely responds to stricter pairwise margins —
//     the protocol-model gap is structural, caused by the *sum* of many
//     individually-tolerable interferers, which no pairwise predicate sees.
package main

import (
	"fmt"
	"log"

	"specmatch"
)

const runs = 15

func main() {
	log.SetFlags(0)
	log.SetPrefix("physicalaudit: ")

	fmt.Println("aggregate-SINR audit, M = 5, N = 80, 5 dB decode threshold,")
	fmt.Printf("links at 0.1× channel range, averaged over %d markets\n\n", runs)
	fmt.Printf("%-26s  %-9s  %-9s  %-12s\n", "allocation", "welfare", "matched", "outage rate")

	type row struct {
		name    string
		deltaDB float64
		naive   bool
	}
	for _, r := range []row{
		{name: "all on one channel", naive: true},
		{name: "matching, disk (paper)"},
		{name: "matching, 3 dB margin", deltaDB: -3},
		{name: "matching, 6 dB margin", deltaDB: -6},
	} {
		var welfare, matched, outageRate float64
		for seed := int64(0); seed < runs; seed++ {
			cfg := specmatch.MarketConfig{Sellers: 5, Buyers: 80, Seed: seed}
			if r.deltaDB != 0 {
				cfg.Radio = &specmatch.RadioConfig{DeltaDB: r.deltaDB}
			}
			m, err := specmatch.GenerateMarket(cfg)
			if err != nil {
				log.Fatalf("generate: %v", err)
			}
			mu := allocate(m, r.naive)
			welfare += specmatch.Welfare(m, mu)
			audit, err := specmatch.AuditPhysical(m, mu, specmatch.LinkParams{LinkFraction: 0.1})
			if err != nil {
				log.Fatalf("audit: %v", err)
			}
			matched += float64(mu.MatchedCount())
			outageRate += audit.OutageRate
		}
		fmt.Printf("%-26s  %-9.2f  %-9.1f  %-12.3f\n",
			r.name, welfare/runs, matched/runs, outageRate/runs)
	}

	fmt.Println()
	fmt.Println("Matching cuts physical outage by roughly 7× versus ignoring the")
	fmt.Println("interference graph, but stricter pairwise margins barely move the")
	fmt.Println("residual ~5%: it comes from the summed far field of many transmitters")
	fmt.Println("that are each individually compatible — invisible to any pairwise")
	fmt.Println("predicate. Closing it needs aggregate-aware admission, a direction the")
	fmt.Println("matching framework does not cover.")
}

func allocate(m *specmatch.Market, naive bool) *specmatch.Matching {
	if !naive {
		res, err := specmatch.Match(m, specmatch.MatchOptions{})
		if err != nil {
			log.Fatalf("match: %v", err)
		}
		return res.Matching
	}
	mu := specmatch.NewMatching(m.M(), m.N())
	for j := 0; j < m.N(); j++ {
		if err := mu.Assign(0, j); err != nil {
			log.Fatalf("assign: %v", err)
		}
	}
	return mu
}
