// Quickstart walks the paper's worked example (Figs. 1–3): a free spectrum
// market with three sellers (channels a, b, c) and five buyers, hand-built
// through the public API. It runs Stage I alone, then the full two-stage
// algorithm, and verifies the published outcome: welfare 27 after deferred
// acceptance, lifted to a Nash-stable 30 by transfer & invitation.
package main

import (
	"fmt"
	"log"

	"specmatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The Fig. 3 toy market. Rows are channels a, b, c; columns are the
	// buyers' offered prices b_{i,j}. Edges connect buyers that interfere on
	// the channel and therefore cannot share it.
	m, err := specmatch.NewMarket(specmatch.MarketSpec{
		Prices: [][]float64{
			{7, 6, 9, 8, 1},  // channel a
			{6, 5, 10, 9, 2}, // channel b
			{3, 4, 8, 7, 3},  // channel c
		},
		Edges: [][][2]int{
			{{0, 1}, {0, 3}},         // channel a
			{{0, 2}, {1, 2}, {2, 3}}, // channel b
			{{1, 4}},                 // channel c
		},
	})
	if err != nil {
		log.Fatalf("building market: %v", err)
	}
	fmt.Printf("market: %v\n\n", m)

	// Stage I: adapted deferred acceptance. Buyers propose in descending
	// utility order; sellers keep their best non-interfering coalition.
	mu1, stage1, err := specmatch.MatchStageI(m, specmatch.MatchOptions{})
	if err != nil {
		log.Fatalf("stage I: %v", err)
	}
	fmt.Printf("after stage I (%d rounds): %v\n", stage1.Rounds, mu1)
	fmt.Printf("stage I welfare: %.0f (the paper's Fig. 1(e) shows 27)\n\n", stage1.Welfare)

	// The full algorithm adds Stage II: buyers transfer to strictly better
	// sellers, then sellers invite previously rejected buyers.
	res, err := specmatch.Match(m, specmatch.MatchOptions{})
	if err != nil {
		log.Fatalf("match: %v", err)
	}
	fmt.Printf("final matching: %v\n", res.Matching)
	fmt.Printf("final welfare: %.0f (the paper's Fig. 2(d) shows 30)\n\n", res.Welfare)

	// The result is interference-free, individually rational and
	// Nash-stable (Props. 3–4) — but, as the paper shows, not necessarily
	// pairwise stable or welfare-optimal.
	rep := specmatch.CheckStability(m, res.Matching)
	fmt.Println("stability report:")
	fmt.Println(rep)

	_, opt, err := specmatch.Optimal(m)
	if err != nil {
		log.Fatalf("optimal: %v", err)
	}
	fmt.Printf("\ncentralized optimum: %.0f → the distributed result achieves %.1f%%\n",
		opt, 100*res.Welfare/opt)
}
