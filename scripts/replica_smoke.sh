#!/bin/sh
# Failover-inject the replication path end to end: start a durable leader
# and a streaming follower (-follow), drive churn-heavy load through the
# cluster-aware specload with a client-side ledger, SIGKILL the leader
# mid-load (≥2000 acked events/s), promote the follower over HTTP, and let
# the load run ride the failover onto the new leader. Afterwards: verify
# the ledger against the promoted node (zero acked-and-lost events),
# specwal-verify both data dirs, and check the role flip on /v1/status.
# Run via `make replica-smoke`.
#
# Set REPLICA_SMOKE_OUT to a directory to keep the ledger, report, diff,
# and logs on failure (CI uploads it as an artifact).
set -eu

work=$(mktemp -d)
leader_pid=""
follower_pid=""
status=1
cleanup() {
    [ -n "$leader_pid" ] && kill -KILL "$leader_pid" 2>/dev/null || true
    [ -n "$follower_pid" ] && kill -KILL "$follower_pid" 2>/dev/null || true
    if [ "$status" -ne 0 ] && [ -n "${REPLICA_SMOKE_OUT:-}" ]; then
        mkdir -p "$REPLICA_SMOKE_OUT"
        for f in ledger.json report.json diff.json leader.log follower.log load.log verify.log; do
            [ -f "$work/$f" ] && cp "$work/$f" "$REPLICA_SMOKE_OUT/" || true
        done
        echo "replica-smoke artifacts copied to $REPLICA_SMOKE_OUT"
    fi
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload
go build -o "$work/specwal" ./cmd/specwal

# wait_addr LOGFILE PID: echoes the listen address once the server reports it.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        a=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$1")
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

# role ADDR: echoes the node's role from /v1/status.
role() {
    curl -sf "http://$1/v1/status" | sed -n 's/.*"role": *"\([a-z]*\)".*/\1/p' | head -1
}

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/leader" -shards 4 >"$work/leader.log" 2>&1 &
leader_pid=$!
leader_addr=$(wait_addr "$work/leader.log" "$leader_pid") || { echo "leader never came up:"; cat "$work/leader.log"; exit 1; }
echo "leader up on $leader_addr (pid $leader_pid)"

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/follower" -follow "http://$leader_addr" >"$work/follower.log" 2>&1 &
follower_pid=$!
follower_addr=$(wait_addr "$work/follower.log" "$follower_pid") || { echo "follower never came up:"; cat "$work/follower.log"; exit 1; }
echo "follower up on $follower_addr (pid $follower_pid), streaming from the leader"

[ "$(role "$leader_addr")" = "leader" ] || { echo "leader /v1/status role is not leader"; exit 1; }
[ "$(role "$follower_addr")" = "follower" ] || { echo "follower /v1/status role is not follower"; exit 1; }

# Churn-heavy load through the cluster router, recording a ledger. No
# -min-rps: the failover window deliberately burns a few hundred ms of
# errors; the pre-kill rate is asserted from the acked count below.
"$work/specload" -cluster "$leader_addr,$follower_addr" -sessions 16 -concurrency 16 \
    -duration 6s -rps 4000 -channel-churn 0.3 \
    -ledger "$work/ledger.json" -report "$work/report.json" >"$work/load.log" 2>&1 &
load_pid=$!

sleep 2
kill -KILL "$leader_pid"
kill_t=2 # seconds of live churn before the SIGKILL
echo "SIGKILLed the leader after ${kill_t}s of load"
leader_pid=""

# Promote the follower. Retry briefly: the kill and the promote race the
# follower noticing its streams died, but promote must win within a second.
promoted=""
i=0
while [ $i -lt 20 ]; do
    if curl -sf -X POST "http://$follower_addr/v1/replica/promote" >/dev/null 2>&1; then
        promoted=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
[ -n "$promoted" ] || { echo "promote never succeeded:"; cat "$work/follower.log"; exit 1; }
[ "$(role "$follower_addr")" = "leader" ] || { echo "follower did not flip to leader after promote"; exit 1; }
echo "follower promoted to leader"

wait "$load_pid" || { echo "specload failed (lost acked events or router gave up):"; cat "$work/load.log"; exit 1; }
cat "$work/load.log"

acked=$(sed -n 's/^ledger: [0-9]* sessions, \([0-9]*\) acked events.*/\1/p' "$work/load.log")
[ -n "$acked" ] || { echo "no ledger line in specload output"; exit 1; }
if [ "$acked" -lt $((kill_t * 2000)) ]; then
    echo "only $acked acked events in ${kill_t}s of pre-kill churn; need >= 2000/s"
    exit 1
fi

# Offline inspection of both data dirs: the killed leader may carry a torn
# tail (expected crash signature); corruption anywhere is fatal.
"$work/specwal" -data-dir "$work/leader" -mode verify
"$work/specwal" -data-dir "$work/follower" -mode verify

# The verdict: every event the cluster acked — before or after failover —
# must be durable on the promoted node. -cluster makes -verify pick the
# first reachable non-follower node, which is the promoted follower (the
# old leader is dead). Writes diff.json on mismatch.
"$work/specload" -cluster "$leader_addr,$follower_addr" -verify "$work/ledger.json" -diff "$work/diff.json" \
    >"$work/verify.log" 2>&1 || { echo "ledger verification FAILED:"; cat "$work/verify.log"; exit 1; }
cat "$work/verify.log"

kill -TERM "$follower_pid"
drain_status=0
wait "$follower_pid" || drain_status=$?
follower_pid=""
if [ "$drain_status" -ne 0 ]; then
    echo "promoted node exited $drain_status on SIGTERM (want clean drain):"
    cat "$work/follower.log"
    exit 1
fi
grep -q '^drained:' "$work/follower.log" || { echo "no drain line in follower log:"; cat "$work/follower.log"; exit 1; }

status=0
echo "replica-smoke OK: $acked acked events survived a leader SIGKILL + promote"
