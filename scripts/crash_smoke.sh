#!/bin/sh
# Crash-inject the durable serving path end to end: start specserved with a
# WAL data dir, drive it with specload recording a client-side ledger of
# every acknowledged event, SIGKILL the server mid-load (≥1000 acked
# events/s of churn), inspect the WAL offline with specwal, restart the
# server over the same data dir, and verify with `specload -verify` that the
# recovered state equals a bit-for-bit replay of the acked ledger — zero
# acked-but-lost events. Run via `make crash-smoke`.
#
# Set CRASH_SMOKE_OUT to a directory to keep the ledger, report, diff, and
# logs on failure (CI uploads it as an artifact).
set -eu

work=$(mktemp -d)
srv_pid=""
status=1
cleanup() {
    [ -n "$srv_pid" ] && kill -KILL "$srv_pid" 2>/dev/null || true
    if [ "$status" -ne 0 ] && [ -n "${CRASH_SMOKE_OUT:-}" ]; then
        mkdir -p "$CRASH_SMOKE_OUT"
        for f in ledger.json report.json diff.json serve1.log serve2.log load.log verify.log; do
            [ -f "$work/$f" ] && cp "$work/$f" "$CRASH_SMOKE_OUT/" || true
        done
        echo "crash-smoke artifacts copied to $CRASH_SMOKE_OUT"
    fi
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload
go build -o "$work/specwal" ./cmd/specwal

# wait_addr LOGFILE: echoes the listen address once the server reports it.
wait_addr() {
    i=0
    while [ $i -lt 50 ]; do
        a=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$1")
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$srv_pid" 2>/dev/null || return 1
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/data" >"$work/serve1.log" 2>&1 &
srv_pid=$!
addr=$(wait_addr "$work/serve1.log") || { echo "specserved never came up:"; cat "$work/serve1.log"; exit 1; }
echo "specserved up on $addr (pid $srv_pid), WAL in $work/data"

# Churn with a ledger. No -min-rps: the run deliberately outlives the server,
# so the duration-averaged rate is meaningless; the pre-kill rate is asserted
# below from the acked count instead.
"$work/specload" -addr "$addr" -sessions 16 -concurrency 16 -duration 4s -rps 2000 \
    -ledger "$work/ledger.json" -report "$work/report.json" >"$work/load.log" 2>&1 &
load_pid=$!

sleep 2
kill -KILL "$srv_pid"
kill_t=2 # seconds of live churn before the SIGKILL
echo "SIGKILLed specserved after ${kill_t}s of load"
srv_pid=""

wait "$load_pid" || { echo "specload failed:"; cat "$work/load.log"; exit 1; }
cat "$work/load.log"

acked=$(sed -n 's/^ledger: [0-9]* sessions, \([0-9]*\) acked events.*/\1/p' "$work/load.log")
[ -n "$acked" ] || { echo "no ledger line in specload output"; exit 1; }
if [ "$acked" -lt $((kill_t * 1000)) ]; then
    echo "only $acked acked events in ${kill_t}s of churn; need >= 1000/s"
    exit 1
fi

# Offline inspection of the crashed image: a torn tail is the expected crash
# signature and fine; mid-log corruption would make specwal exit non-zero.
"$work/specwal" -data-dir "$work/data" -mode verify

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/data" >"$work/serve2.log" 2>&1 &
srv_pid=$!
addr=$(wait_addr "$work/serve2.log") || { echo "specserved did not recover:"; cat "$work/serve2.log"; exit 1; }
grep -q '^recovered 16 sessions' "$work/serve2.log" || {
    echo "restart did not recover all 16 sessions:"; cat "$work/serve2.log"; exit 1;
}
echo "specserved recovered on $addr (pid $srv_pid)"

# The verdict: every acked event must be present, in order, with identical
# per-event stats, and the recovered sessions must equal a fresh replay of
# the ledger. Writes diff.json on mismatch.
"$work/specload" -addr "$addr" -verify "$work/ledger.json" -diff "$work/diff.json" \
    >"$work/verify.log" 2>&1 || { echo "ledger verification FAILED:"; cat "$work/verify.log"; exit 1; }
cat "$work/verify.log"

kill -TERM "$srv_pid"
drain_status=0
wait "$srv_pid" || drain_status=$?
srv_pid=""
if [ "$drain_status" -ne 0 ]; then
    echo "recovered specserved exited $drain_status on SIGTERM (want clean drain):"
    cat "$work/serve2.log"
    exit 1
fi
grep -q '^drained:' "$work/serve2.log" || { echo "no drain line in log:"; cat "$work/serve2.log"; exit 1; }

status=0
echo "crash-smoke OK: $acked acked events survived a SIGKILL"
