#!/bin/sh
# Smoke-test the serving path end to end: start specserved on an ephemeral
# port, drive it with specload at ≥1000 req/s, reconcile accepted vs applied
# events (zero lost), then assert a clean SIGTERM drain and a non-empty
# metrics dump. Run via `make serve-smoke`.
set -eu

work=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload

"$work/specserved" -addr 127.0.0.1:0 -metrics-json "$work/metrics.json" -trace-dump "$work/trace.json" \
    >"$work/serve.log" 2>&1 &
srv_pid=$!

addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "specserved died on startup:"; cat "$work/serve.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "specserved never reported its address:"; cat "$work/serve.log"; exit 1; }
echo "specserved up on $addr (pid $srv_pid)"

# specload exits non-zero on lost events or a rate below -min-rps.
"$work/specload" -addr "$addr" -sessions 8 -concurrency 8 -duration 3s \
    -min-rps 1000 -report "$work/report.json"

kill -TERM "$srv_pid"
drain_status=0
wait "$srv_pid" || drain_status=$?
srv_pid=""
if [ "$drain_status" -ne 0 ]; then
    echo "specserved exited $drain_status on SIGTERM (want clean drain):"
    cat "$work/serve.log"
    exit 1
fi
grep -q '^drained:' "$work/serve.log" || { echo "no drain line in log:"; cat "$work/serve.log"; exit 1; }
grep -q 'server.events.applied' "$work/metrics.json" || { echo "metrics dump missing counters"; exit 1; }

echo "serve-smoke OK"
cat "$work/report.json"
