#!/bin/sh
# Schema-compatibility smoke: prove that today's binary serves yesterday's
# bytes. The committed v0-generation data dir (JSON record bodies, written
# before the unified event schema existed) is copied out of testdata,
# verified with specwal, recovered by specserved, checked against its pinned
# state, exercised through the v1 binary wire format (specload -binary) and
# a point-in-time fork, drained, and verified again — now with v1
# checkpoints in the very same directory. Run via `make compat-smoke`.
set -eu

work=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload
go build -o "$work/specwal" ./cmd/specwal

cp -r internal/server/testdata/v0-datadir "$work/data"
chmod -R u+w "$work/data"

echo "== specwal verify on the v0 generation =="
# The fixture ends in a deliberately torn tail on shard-001: report it,
# exit 0 — torn is recoverable, only corruption fails verify.
"$work/specwal" -data-dir "$work/data"

echo "== recover the v0 dir with the current binary =="
"$work/specserved" -addr 127.0.0.1:0 -shards 2 -data-dir "$work/data" \
    >"$work/serve.log" 2>&1 &
srv_pid=$!
addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "specserved died on v0 recovery:"; cat "$work/serve.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "specserved never reported its address:"; cat "$work/serve.log"; exit 1; }
echo "specserved up on $addr over the v0 dir"

# The recovered state must match the expectation pinned beside the fixture
# (welfare is a bit-exact float; a codec drift would change it).
curl -sf "http://$addr/v1/sessions/m00000001" >"$work/m1.json"
grep -q '"welfare": *7.038951174323098' "$work/m1.json" || {
    echo "recovered m00000001 does not match the pinned v0 state:"; cat "$work/m1.json"; exit 1; }
# m00000002 was deleted in the fixture's live log; it must stay deleted.
if curl -sf "http://$addr/v1/sessions/m00000002" >/dev/null 2>&1; then
    echo "m00000002 was deleted in the v0 log but recovered live"; exit 1
fi

echo "== v1 binary wire format against the recovered store =="
"$work/specload" -addr "$addr" -sessions 4 -concurrency 4 -duration 2s -binary \
    -report "$work/report.json"

echo "== fork a v0-recovered session =="
curl -sf -X POST "http://$addr/v1/sessions/m00000001/fork" >"$work/fork.json"
grep -q '"from": *"m00000001"' "$work/fork.json" || {
    echo "fork of a v0-recovered session failed:"; cat "$work/fork.json"; exit 1; }

kill -TERM "$srv_pid"
drain_status=0
wait "$srv_pid" || drain_status=$?
srv_pid=""
[ "$drain_status" -eq 0 ] || { echo "specserved exited $drain_status on SIGTERM:"; cat "$work/serve.log"; exit 1; }

echo "== specwal verify on the upgraded (v1) generation =="
"$work/specwal" -data-dir "$work/data"

echo "compat-smoke OK"
