#!/bin/sh
# Smoke-test the tracing path end to end: start specserved with its always-on
# flight recorder, drive it with specload (each event request carries a fresh
# traceparent), dump the ring with SIGQUIT while the server keeps running,
# then drain and run specstrace -check over the dump — zero orphan spans, and
# the full http -> shard op -> step -> engine chain present. Run via
# `make trace-smoke`.
set -eu

work=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload
go build -o "$work/specstrace" ./cmd/specstrace

"$work/specserved" -addr 127.0.0.1:0 -trace-dump "$work/trace.json" \
    >"$work/serve.log" 2>&1 &
srv_pid=$!

addr=""
i=0
while [ $i -lt 50 ]; do
    addr=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$work/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$srv_pid" 2>/dev/null || { echo "specserved died on startup:"; cat "$work/serve.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "specserved never reported its address:"; cat "$work/serve.log"; exit 1; }
echo "specserved up on $addr (pid $srv_pid)"

"$work/specload" -addr "$addr" -sessions 4 -concurrency 4 -duration 2s

# SIGQUIT is the flight-recorder inspection signal: the server dumps the ring
# and keeps serving.
kill -QUIT "$srv_pid"
i=0
while [ $i -lt 50 ]; do
    grep -q 'flight recorder: dumped' "$work/serve.log" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q 'flight recorder: dumped' "$work/serve.log" || { echo "no SIGQUIT dump:"; cat "$work/serve.log"; exit 1; }
[ -s "$work/trace.json" ] || { echo "SIGQUIT dump is empty"; exit 1; }
kill -0 "$srv_pid" 2>/dev/null || { echo "specserved exited on SIGQUIT (must keep serving)"; exit 1; }

# The analyzer must reassemble the dump with zero orphan spans and see the
# whole request chain.
"$work/specstrace" -check "$work/trace.json" >"$work/analysis.txt"
for span in http.events server.shard_op online.step core.repair core.round core.solve; do
    grep -q "$span" "$work/analysis.txt" || { echo "analysis missing $span spans:"; cat "$work/analysis.txt"; exit 1; }
done

# Clean drain still works (and writes a second dump).
kill -TERM "$srv_pid"
drain_status=0
wait "$srv_pid" || drain_status=$?
srv_pid=""
if [ "$drain_status" -ne 0 ]; then
    echo "specserved exited $drain_status on SIGTERM (want clean drain):"
    cat "$work/serve.log"
    exit 1
fi
grep -q '^drained:' "$work/serve.log" || { echo "no drain line in log:"; cat "$work/serve.log"; exit 1; }

echo "trace-smoke OK"
head -20 "$work/analysis.txt"
