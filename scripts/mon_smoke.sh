#!/bin/sh
# Fleet-telemetry smoke: a durable leader plus a streaming follower under
# churny specload, watched by specmon. Asserts, in order:
#   1. `specmon -check` is green at load (p99, error-rate, replica-lag SLOs)
#      against the live two-node cluster.
#   2. The client-side ledger verifies against the leader and the specload
#      -timeline series landed in the JSON report.
#   3. A provoked overload (huge markets -> slow repairs -> a saturated
#      16-deep shard queue and a p99 blowup) makes the anomaly watchdog
#      capture an evidence pair — flight-recorder dump + CPU profile — in
#      the leader's evidence dir, listed by /debug/evidence and by specmon.
#   4. Both nodes drain cleanly on SIGTERM and both data dirs are
#      specwal-clean afterwards.
# Run via `make mon-smoke`.
#
# Set MON_SMOKE_OUT to a directory to keep logs and reports on failure
# (CI uploads it as an artifact).
set -eu

work=$(mktemp -d)
leader_pid=""
follower_pid=""
status=1
cleanup() {
    [ -n "$leader_pid" ] && kill -KILL "$leader_pid" 2>/dev/null || true
    [ -n "$follower_pid" ] && kill -KILL "$follower_pid" 2>/dev/null || true
    if [ "$status" -ne 0 ] && [ -n "${MON_SMOKE_OUT:-}" ]; then
        mkdir -p "$MON_SMOKE_OUT"
        for f in ledger.json report.json diff.json leader.log follower.log \
            load.log burst.log check.log verify.log mon.jsonl evidence.json; do
            [ -f "$work/$f" ] && cp "$work/$f" "$MON_SMOKE_OUT/" || true
        done
        echo "mon-smoke artifacts copied to $MON_SMOKE_OUT"
    fi
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload
go build -o "$work/specmon" ./cmd/specmon
go build -o "$work/specwal" ./cmd/specwal

# wait_addr LOGFILE PID: echoes the listen address once the server reports it.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        a=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$1")
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

# A small queue and a fast sampler so the overload phase is observable:
# 2 shards x 16 deep, 100ms delta windows, capture after 2 anomalous
# windows in a row, queue trigger at half depth.
"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/leader" -shards 2 \
    -queue-depth 16 -sample-interval 100ms \
    -anomaly-sustain 2 -anomaly-queue-frac 0.5 \
    >"$work/leader.log" 2>&1 &
leader_pid=$!
leader_addr=$(wait_addr "$work/leader.log" "$leader_pid") || { echo "leader never came up:"; cat "$work/leader.log"; exit 1; }
echo "leader up on $leader_addr (pid $leader_pid)"

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/follower" \
    -follow "http://$leader_addr" -sample-interval 100ms \
    >"$work/follower.log" 2>&1 &
follower_pid=$!
follower_addr=$(wait_addr "$work/follower.log" "$follower_pid") || { echo "follower never came up:"; cat "$work/follower.log"; exit 1; }
echo "follower up on $follower_addr (pid $follower_pid), streaming from the leader"

# Phase 1: steady churny load with a ledger and a client-side -timeline,
# throttled well under the shard queues so the cluster is healthy.
"$work/specload" -addr "$leader_addr" -sessions 8 -concurrency 4 \
    -duration 6s -rps 500 -channel-churn 0.3 -timeline 250ms \
    -ledger "$work/ledger.json" -report "$work/report.json" \
    >"$work/load.log" 2>&1 &
load_pid=$!

# specmon -check rides along while the load runs: the SLO gate must be
# green against the live two-node fleet.
sleep 1
"$work/specmon" -check -interval 500ms -duration 3s \
    -slo-p99 1s -slo-error-rate 0.01 -slo-lag-lsn 100000 \
    "http://$leader_addr" "http://$follower_addr" \
    >"$work/check.log" 2>&1 || { echo "specmon -check FAILED on a healthy cluster:"; cat "$work/check.log"; exit 1; }
cat "$work/check.log"

wait "$load_pid" || { echo "steady-phase specload failed:"; cat "$work/load.log"; exit 1; }
cat "$work/load.log"

# The -timeline satellite: the report embeds a non-trivial per-interval series.
points=$(grep -c '"start_ms"' "$work/report.json" || true)
if [ "$points" -lt 3 ]; then
    echo "report timeline has $points points, want >= 3"
    exit 1
fi
echo "timeline: $points per-interval points in report.json"

# Every acked event is durable on the live leader before we start abusing it.
"$work/specload" -addr "$leader_addr" -verify "$work/ledger.json" -diff "$work/diff.json" \
    >"$work/verify.log" 2>&1 || { echo "ledger verification FAILED:"; cat "$work/verify.log"; exit 1; }
cat "$work/verify.log"

# Phase 2: provoke an anomaly. Big markets make each repair expensive, so
# 32 unthrottled workers pile real work onto two 16-deep queues: sustained
# saturation (and a p99 blowup vs the phase-1 baseline) must trip the
# watchdog. 429s are expected and harmless here.
"$work/specload" -addr "$leader_addr" -sessions 8 -concurrency 32 \
    -sellers 48 -buyers 384 -duration 3s -channel-churn 0.5 \
    >"$work/burst.log" 2>&1 || { echo "overload specload failed outright:"; cat "$work/burst.log"; exit 1; }
cat "$work/burst.log"

# The evidence pair: a flight dump and its CPU profile under the same stem.
# The profile lands asynchronously (2s capture), so poll.
evidence=""
i=0
while [ $i -lt 100 ]; do
    for t in "$work/leader/evidence"/anomaly-*.trace.json; do
        [ -f "$t" ] || continue
        stem=${t%.trace.json}
        if [ -f "$stem.pprof" ]; then evidence="$stem"; break 2; fi
    done
    sleep 0.2
    i=$((i + 1))
done
if [ -z "$evidence" ]; then
    echo "no anomaly evidence pair in $work/leader/evidence after overload:"
    ls -l "$work/leader/evidence" 2>/dev/null || echo "(no evidence dir)"
    cat "$work/leader.log"
    exit 1
fi
echo "evidence pair captured: $(basename "$evidence").{trace.json,pprof}"

# The server lists it on /debug/evidence and specmon surfaces it per node.
curl -sf "http://$leader_addr/debug/evidence" >"$work/evidence.json"
grep -q "$(basename "$evidence").pprof" "$work/evidence.json" || { echo "/debug/evidence does not list the pprof:"; cat "$work/evidence.json"; exit 1; }
"$work/specmon" -json -interval 300ms -duration 700ms "http://$leader_addr" >"$work/mon.jsonl"
grep -q 'anomaly-' "$work/mon.jsonl" || { echo "specmon timeline does not list the evidence:"; cat "$work/mon.jsonl"; exit 1; }
echo "evidence visible via /debug/evidence and specmon"

# Clean drain on both nodes, then offline verification of both data dirs.
kill -TERM "$follower_pid"
drain_status=0
wait "$follower_pid" || drain_status=$?
follower_pid=""
[ "$drain_status" -eq 0 ] || { echo "follower exited $drain_status on SIGTERM:"; cat "$work/follower.log"; exit 1; }

kill -TERM "$leader_pid"
drain_status=0
wait "$leader_pid" || drain_status=$?
leader_pid=""
[ "$drain_status" -eq 0 ] || { echo "leader exited $drain_status on SIGTERM:"; cat "$work/leader.log"; exit 1; }
grep -q '^drained:' "$work/leader.log" || { echo "no drain line in leader log:"; cat "$work/leader.log"; exit 1; }

"$work/specwal" -data-dir "$work/leader" -mode verify
"$work/specwal" -data-dir "$work/follower" -mode verify

status=0
echo "mon-smoke OK: SLOs green at load, anomaly evidence captured and listed, clean drain"
