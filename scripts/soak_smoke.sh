#!/bin/sh
# Long-run scenario soak of the mobility path: a durable leader plus a
# streaming follower under `specload -scenario mobile,diurnal,flash` — a
# nonhomogeneous Poisson workload with diurnal rate waves, flash-crowd
# bursts, and random-waypoint Move events rewiring interference graphs
# live. Asserts, in order:
#   1. `specmon -check` is green mid-soak (p99, error-rate, replica-lag
#      SLOs) against the live two-node cluster.
#   2. Zero lost events: the specload report reconciles accepted ==
#      applied, the scenario and -timeline series (with explicit empty
#      valley windows) landed in the JSON report, and the server's
#      `server.churn.moved` counter proves moves actually rewired graphs.
#   3. The client-side ledger verifies against the leader: every acked
#      event durable, recovered state bit-for-bit equal to a replay.
#   4. Rebuild-policy welfare drift is measured per session — the online
#      incremental-repair welfare versus a fresh non-adopting
#      POST /v1/sessions/{id}/rebuild — and reported as a mean/max summary.
#   5. Both nodes drain cleanly on SIGTERM, both data dirs are
#      specwal-clean, and the WAL/checkpoint footprint is reported.
# Run via `make soak-smoke`. The full soak is 5 minutes; set SOAK_DURATION
# (Go duration), SOAK_PERIOD, and SOAK_RPS to shrink or scale it.
#
# Set SOAK_SMOKE_OUT to a directory to keep the ledger, report, diff, and
# logs on failure (CI uploads it as an artifact).
set -eu

dur=${SOAK_DURATION:-300s}
period=${SOAK_PERIOD:-75s}
rps=${SOAK_RPS:-300}

work=$(mktemp -d)
leader_pid=""
follower_pid=""
status=1
cleanup() {
    [ -n "$leader_pid" ] && kill -KILL "$leader_pid" 2>/dev/null || true
    [ -n "$follower_pid" ] && kill -KILL "$follower_pid" 2>/dev/null || true
    if [ "$status" -ne 0 ] && [ -n "${SOAK_SMOKE_OUT:-}" ]; then
        mkdir -p "$SOAK_SMOKE_OUT"
        for f in ledger.json report.json diff.json leader.log follower.log \
            load.log check.log verify.log metrics.json drift.txt; do
            [ -f "$work/$f" ] && cp "$work/$f" "$SOAK_SMOKE_OUT/" || true
        done
        echo "soak-smoke artifacts copied to $SOAK_SMOKE_OUT"
    fi
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload
go build -o "$work/specmon" ./cmd/specmon
go build -o "$work/specwal" ./cmd/specwal

# wait_addr LOGFILE PID: echoes the listen address once the server reports it.
wait_addr() {
    i=0
    while [ $i -lt 100 ]; do
        a=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$1")
        if [ -n "$a" ]; then echo "$a"; return 0; fi
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
        i=$((i + 1))
    done
    return 1
}

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/leader" -shards 4 \
    >"$work/leader.log" 2>&1 &
leader_pid=$!
leader_addr=$(wait_addr "$work/leader.log" "$leader_pid") || { echo "leader never came up:"; cat "$work/leader.log"; exit 1; }
echo "leader up on $leader_addr (pid $leader_pid)"

"$work/specserved" -addr 127.0.0.1:0 -data-dir "$work/follower" \
    -follow "http://$leader_addr" >"$work/follower.log" 2>&1 &
follower_pid=$!
follower_addr=$(wait_addr "$work/follower.log" "$follower_pid") || { echo "follower never came up:"; cat "$work/follower.log"; exit 1; }
echo "follower up on $follower_addr (pid $follower_pid), streaming from the leader"

# The soak itself: an open-loop time-varying workload. -rps is the peak the
# diurnal curve thins; the flash component pins it back to peak late in each
# cycle; the mobile component walks buyers along random waypoints, turning a
# slice of churn events into live interference-graph rewires.
echo "soak: scenario mobile,diurnal,flash for $dur (period $period, peak $rps rps)"
"$work/specload" -addr "$leader_addr" -sessions 8 -concurrency 4 \
    -scenario mobile,diurnal,flash -scenario-period "$period" \
    -duration "$dur" -rps "$rps" -channel-churn 0.2 -timeline 5s \
    -ledger "$work/ledger.json" -report "$work/report.json" \
    >"$work/load.log" 2>&1 &
load_pid=$!

# specmon -check rides along mid-soak: the SLO gate (tail latency, error
# rate, replication lag) must be green against the live two-node fleet.
sleep 5
"$work/specmon" -check -interval 1s -duration 10s \
    -slo-p99 1s -slo-error-rate 0.01 -slo-lag-lsn 100000 \
    "http://$leader_addr" "http://$follower_addr" \
    >"$work/check.log" 2>&1 || { echo "specmon -check FAILED mid-soak:"; cat "$work/check.log"; exit 1; }
cat "$work/check.log"

wait "$load_pid" || { echo "soak specload failed:"; cat "$work/load.log"; exit 1; }
cat "$work/load.log"

# Zero lost events, reconciled against the server's own applied counter.
grep -q '"lost_events": 0' "$work/report.json" || { echo "lost events:"; cat "$work/report.json"; exit 1; }
grep -q '"reconciled": true' "$work/report.json" || { echo "accepted != applied:"; cat "$work/report.json"; exit 1; }
grep -q '"scenario": "mobile,diurnal,flash"' "$work/report.json" || { echo "report did not record the scenario"; exit 1; }

# The -timeline series landed; scenario valleys may appear as explicit
# empty windows rather than silent gaps.
points=$(grep -c '"start_ms"' "$work/report.json" || true)
[ "$points" -ge 3 ] || { echo "report timeline has $points points, want >= 3"; exit 1; }
empties=$(grep -c '"empty": true' "$work/report.json" || true)
echo "timeline: $points per-interval points ($empties explicit empty windows)"

# Moves really flowed: the mobility counter must have advanced.
curl -sf "http://$leader_addr/debug/metrics" >"$work/metrics.json"
moved=$(sed -n 's/.*"server.churn.moved": *\([0-9]*\).*/\1/p' "$work/metrics.json" | head -1)
[ -n "$moved" ] && [ "$moved" -gt 0 ] || {
    echo "no buyer moves applied (server.churn.moved = ${moved:-missing})"; exit 1; }
echo "mobility: $moved buyer moves applied server-side"

# Every acked event — churn and moves alike — is durable and the recovered
# state is bit-for-bit what replaying the ledger produces.
"$work/specload" -addr "$leader_addr" -verify "$work/ledger.json" -diff "$work/diff.json" \
    >"$work/verify.log" 2>&1 || { echo "ledger verification FAILED:"; cat "$work/verify.log"; exit 1; }
cat "$work/verify.log"

# Rebuild-policy welfare drift: for each soaked session, the welfare the
# online incremental-repair policy holds versus a fresh two-stage rebuild
# over the same active sub-market (non-adopting, a pure read). Either
# heuristic can win on a given instant; the drift is reported, not gated.
ids=$(curl -sf "http://$leader_addr/v1/sessions" | tr -d '\n\t ' | sed -n 's/.*"sessions":\[\([^]]*\)\].*/\1/p' | tr -d '"' | tr ',' ' ')
[ -n "$ids" ] || { echo "no sessions listed for the drift report"; exit 1; }
for id in $ids; do
    online=$(curl -sf "http://$leader_addr/v1/sessions/$id" | sed -n 's/.*"welfare": *\([-0-9.eE+]*\).*/\1/p' | head -1)
    fresh=$(curl -sf -X POST -H 'Content-Type: application/json' -d '{"adopt": false}' \
        "http://$leader_addr/v1/sessions/$id/rebuild" | sed -n 's/.*"welfare": *\([-0-9.eE+]*\).*/\1/p' | head -1)
    [ -n "$online" ] && [ -n "$fresh" ] || { echo "unreadable welfare for session $id"; exit 1; }
    echo "$id $online $fresh"
done >"$work/drift.txt"
awk '{
    drift = ($3 != 0) ? ($3 - $2) / $3 * 100 : 0
    printf "  %s online %.4f rebuild %.4f drift %+.2f%%\n", $1, $2, $3, drift
    sum += drift; n++
    a = drift < 0 ? -drift : drift
    if (a > maxa) maxa = a
} END {
    if (n == 0) exit 1
    printf "welfare drift: %d sessions, mean %+.2f%%, max |drift| %.2f%%\n", n, sum / n, maxa
}' "$work/drift.txt"

# Clean drain on both nodes, then offline verification of both data dirs:
# specwal-clean, with the WAL/checkpoint footprint on the aggregate lines.
kill -TERM "$follower_pid"
drain_status=0
wait "$follower_pid" || drain_status=$?
follower_pid=""
[ "$drain_status" -eq 0 ] || { echo "follower exited $drain_status on SIGTERM:"; cat "$work/follower.log"; exit 1; }

kill -TERM "$leader_pid"
drain_status=0
wait "$leader_pid" || drain_status=$?
leader_pid=""
[ "$drain_status" -eq 0 ] || { echo "leader exited $drain_status on SIGTERM:"; cat "$work/leader.log"; exit 1; }
grep -q '^drained:' "$work/leader.log" || { echo "no drain line in leader log:"; cat "$work/leader.log"; exit 1; }

"$work/specwal" -data-dir "$work/leader" -mode verify | tail -1
"$work/specwal" -data-dir "$work/follower" -mode verify | tail -1

status=0
echo "soak-smoke OK: scenario soak reconciled with zero lost events, $moved moves, ledger verified, clean drains"
