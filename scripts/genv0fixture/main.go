// Command genv0fixture regenerates the committed v0-format golden data dir
// under internal/server/testdata. v0 is the WAL body encoding specserved
// shipped with before the unified event schema (internal/eventlog): plain
// JSON bodies — `{"id","spec"}` for creates, `{"id","event"}` for steps,
// `{"id"}` for rebuilds and deletes, and a sorted `{"next_id","sessions"}`
// checkpoint. The generator hand-rolls those bodies instead of calling the
// server's encoder precisely so it keeps producing v0 bytes after the
// server moved on: the fixture pins backward compatibility, so it must not
// follow the current writer.
//
//	go run ./scripts/genv0fixture
//
// Layout produced (deterministic: fixed seeds, no timestamps):
//
//	internal/server/testdata/v0-datadir/     meta.json + two shards, each a
//	                                         JSON-body checkpoint plus a live
//	                                         log of create/step/rebuild/delete
//	                                         records; shard-001's log ends in
//	                                         a torn frame (crash signature)
//	internal/server/testdata/v0-expected.json  the session snapshots recovery
//	                                         must reproduce, captured by
//	                                         recovering a copy of the fixture
//
// The compat test (TestV0DataDirRecovery) recovers the committed dir and
// compares bit-for-bit against the expected file; regeneration is only ever
// needed if the *fixture shape* changes, never because the codec did.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"specmatch/internal/core"
	"specmatch/internal/market"
	"specmatch/internal/online"
	"specmatch/internal/server"
	"specmatch/internal/wal"
)

// coreOptions is the engine configuration the fixture sessions step with.
// Recovery re-steps them under the store's own options; both are the default
// engine, and the output is bit-identical regardless of observers.
func coreOptions() core.Options { return core.Options{} }

// The v0 body shapes, JSON tags exactly as the pre-eventlog server wrote
// them. Kept local on purpose; see the package comment.
type v0Create struct {
	ID   string      `json:"id"`
	Spec market.Spec `json:"spec"`
}
type v0Step struct {
	ID    string       `json:"id"`
	Event online.Event `json:"event"`
}
type v0ID struct {
	ID string `json:"id"`
}
type v0Checkpoint struct {
	NextID   uint64        `json:"next_id"`
	Sessions []v0SessState `json:"sessions"`
}
type v0SessState struct {
	ID    string          `json:"id"`
	Spec  market.Spec     `json:"spec"`
	State online.Snapshot `json:"state"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genv0fixture:", err)
		os.Exit(1)
	}
}

// fnvShard mirrors the store's id → shard pinning (FNV-1a mod shards).
func fnvShard(id string, shards int) int {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime
	}
	return int(h % uint32(shards))
}

func run() error {
	root := filepath.Join("internal", "server", "testdata")
	dataDir := filepath.Join(root, "v0-datadir")
	if err := os.RemoveAll(dataDir); err != nil {
		return err
	}
	const shards = 2
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	meta, _ := json.Marshal(map[string]int{"format": 1, "shards": shards})
	if err := os.WriteFile(filepath.Join(dataDir, "meta.json"), append(meta, '\n'), 0o644); err != nil {
		return err
	}

	// Build the fleet state the checkpoints describe: four sessions stepped
	// through a churn prefix entirely in memory (the deterministic engine
	// makes these snapshots exactly what the v0 server would have
	// checkpointed).
	type sess struct {
		id    string
		m     *market.Market
		s     *online.Session
		shard int
	}
	var fleet []*sess
	for k := 0; k < 4; k++ {
		m, err := market.Generate(market.Config{Sellers: 3, Buyers: 10, Seed: int64(300 + k)})
		if err != nil {
			return err
		}
		s, err := online.NewSession(m, coreOptions())
		if err != nil {
			return err
		}
		id := fmt.Sprintf("m%08x", k+1)
		fleet = append(fleet, &sess{id: id, m: m, s: s, shard: fnvShard(id, shards)})
	}
	// Checkpointed prefix: every session takes a few steps before the
	// snapshot is cut.
	for k, ss := range fleet {
		for _, ev := range online.SyntheticChurn(ss.m, int64(50+k), 3) {
			if _, err := ss.s.Step(ev); err != nil {
				return err
			}
		}
	}

	// Per-shard checkpoints at the LSN where that shard's log then begins.
	perShard := make([][]*sess, shards)
	for _, ss := range fleet {
		perShard[ss.shard] = append(perShard[ss.shard], ss)
	}
	ckptLSN := [shards]uint64{7, 9} // arbitrary but > 0: replay must filter on it
	for i := 0; i < shards; i++ {
		cp := v0Checkpoint{NextID: uint64(len(fleet))}
		sort.Slice(perShard[i], func(a, b int) bool { return perShard[i][a].id < perShard[i][b].id })
		for _, ss := range perShard[i] {
			cp.Sessions = append(cp.Sessions, v0SessState{ID: ss.id, Spec: ss.m.Spec(), State: ss.s.Snapshot()})
		}
		body, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		shardDir := filepath.Join(dataDir, fmt.Sprintf("shard-%03d", i))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			return err
		}
		buf := append([]byte{}, wal.Magic[:]...)
		buf = wal.AppendRecord(buf, wal.Record{Type: wal.TypeSnapshot, LSN: ckptLSN[i], Body: body})
		if err := os.WriteFile(filepath.Join(shardDir, fmt.Sprintf("snap-%016x.ckpt", 3)), buf, 0o644); err != nil {
			return err
		}
	}

	// Live logs past the checkpoints: steps on every session, one
	// post-checkpoint create (id survives only in its create record), one
	// rebuild, one delete. Bodies are v0 JSON.
	logs := make([][]byte, shards)
	lsn := ckptLSN
	appendRec := func(shard int, typ wal.Type, body any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		lsn[shard]++
		logs[shard] = wal.AppendRecord(logs[shard], wal.Record{Type: typ, LSN: lsn[shard], Body: data})
		return nil
	}
	for k, ss := range fleet {
		for _, ev := range online.SyntheticChurn(ss.m, int64(70+k), 2) {
			if err := appendRec(ss.shard, wal.TypeStep, v0Step{ID: ss.id, Event: ev}); err != nil {
				return err
			}
		}
	}
	// A session created after the checkpoint, then stepped.
	m5, err := market.Generate(market.Config{Sellers: 2, Buyers: 8, Seed: 305})
	if err != nil {
		return err
	}
	id5 := fmt.Sprintf("m%08x", 5)
	sh5 := fnvShard(id5, shards)
	if err := appendRec(sh5, wal.TypeCreate, v0Create{ID: id5, Spec: m5.Spec()}); err != nil {
		return err
	}
	if err := appendRec(sh5, wal.TypeStep, v0Step{ID: id5, Event: online.Event{Arrive: []int{0, 3, 5}}}); err != nil {
		return err
	}
	if err := appendRec(fleet[0].shard, wal.TypeRebuild, v0ID{ID: fleet[0].id}); err != nil {
		return err
	}
	if err := appendRec(fleet[1].shard, wal.TypeDelete, v0ID{ID: fleet[1].id}); err != nil {
		return err
	}
	// Crash signature on shard-001: a torn final frame (recovery must drop
	// it silently — it was never acknowledged).
	torn := wal.AppendRecord(nil, wal.Record{Type: wal.TypeStep, LSN: lsn[1] + 1,
		Body: []byte(`{"id":"m00000002","event":{"arrive":[1]}}`)})
	logs[1] = append(logs[1], torn[:len(torn)-5]...)

	for i := 0; i < shards; i++ {
		buf := append(append([]byte{}, wal.Magic[:]...), logs[i]...)
		if err := os.WriteFile(filepath.Join(dataDir, fmt.Sprintf("shard-%03d", i), fmt.Sprintf("wal-%016x.log", 3)), buf, 0o644); err != nil {
			return err
		}
	}

	// Expected state: recover a COPY (recovery rewrites checkpoints) and
	// record every session snapshot. Whatever engine version replays this is
	// pinned to produce these exact snapshots.
	tmp, err := os.MkdirTemp("", "v0fixture")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	if err := copyTree(dataDir, tmp); err != nil {
		return err
	}
	st, err := server.NewStore(server.Config{Shards: shards, DataDir: tmp, FsyncInterval: -1})
	if err != nil {
		return fmt.Errorf("recovering generated fixture: %w", err)
	}
	defer st.Close()
	ctx := context.Background()
	ids, err := st.List(ctx)
	if err != nil {
		return err
	}
	expected := make(map[string]online.Snapshot, len(ids))
	for _, id := range ids {
		snap, err := st.Get(ctx, id)
		if err != nil {
			return err
		}
		expected[id] = snap
	}
	out, err := json.MarshalIndent(expected, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(root, "v0-expected.json"), append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d sessions expected after recovery)\n", dataDir, len(expected))
	return nil
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}
