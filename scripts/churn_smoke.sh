#!/bin/sh
# Smoke-test the incremental churn engine on the serving path: start
# specserved (incremental by default), drive it with a churn-heavy specload
# mix (high channel up/down probability, large buyer batches), and require a
# clean reconciliation — every accepted event applied, zero lost. Then assert
# the incremental engine actually ran (core.incremental.steps > 0 in the
# metrics dump) and that the -disable-incremental escape hatch still serves
# the same workload cleanly. Run via `make churn-smoke`.
set -eu

work=$(mktemp -d)
srv_pid=""
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/specserved" ./cmd/specserved
go build -o "$work/specload" ./cmd/specload

# wait_addr <logfile>: echo the listen address once the server reports it.
wait_addr() {
    i=0
    while [ $i -lt 50 ]; do
        a=$(sed -n 's#^specserved listening on http://\([^ ]*\)$#\1#p' "$1")
        [ -n "$a" ] && { echo "$a"; return 0; }
        kill -0 "$srv_pid" 2>/dev/null || { echo "specserved died on startup:" >&2; cat "$1" >&2; return 1; }
        sleep 0.1
        i=$((i + 1))
    done
    echo "specserved never reported its address:" >&2
    cat "$1" >&2
    return 1
}

# reconcile <report.json>: accepted events must equal server-applied events.
reconcile() {
    grep -q '"lost_events": 0' "$1" || { echo "lost events in $1:"; cat "$1"; exit 1; }
    grep -q '"reconciled": true' "$1" || { echo "accepted != applied in $1:"; cat "$1"; exit 1; }
}

# Pass 1: the default incremental engine under churn-heavy load.
"$work/specserved" -addr 127.0.0.1:0 -metrics-json "$work/metrics.json" -trace-dump "" \
    >"$work/serve.log" 2>&1 &
srv_pid=$!
addr=$(wait_addr "$work/serve.log")
echo "specserved up on $addr (pid $srv_pid, incremental)"

"$work/specload" -addr "$addr" -sessions 8 -concurrency 8 -duration 3s \
    -channel-churn 0.5 -batch 8 -min-rps 500 -report "$work/report.json"
reconcile "$work/report.json"

kill -TERM "$srv_pid"
wait "$srv_pid" || { echo "specserved exited dirty on SIGTERM:"; cat "$work/serve.log"; exit 1; }
srv_pid=""
grep -q 'core.incremental.steps' "$work/metrics.json" || {
    echo "metrics dump has no core.incremental.steps counter"; exit 1; }
steps=$(sed -n 's#.*"core.incremental.steps": \([0-9]*\).*#\1#p' "$work/metrics.json" | head -1)
[ -n "$steps" ] && [ "$steps" -gt 0 ] || {
    echo "incremental engine never ran (core.incremental.steps = ${steps:-missing})"; exit 1; }
echo "incremental pass OK ($steps incremental steps)"

# Pass 2: the -disable-incremental escape hatch serves the same mix.
"$work/specserved" -addr 127.0.0.1:0 -disable-incremental -metrics-json "$work/metrics2.json" \
    -trace-dump "" >"$work/serve2.log" 2>&1 &
srv_pid=$!
addr=$(wait_addr "$work/serve2.log")
echo "specserved up on $addr (pid $srv_pid, full repair)"

"$work/specload" -addr "$addr" -sessions 4 -concurrency 4 -duration 2s \
    -channel-churn 0.5 -batch 8 -report "$work/report2.json"
reconcile "$work/report2.json"

kill -TERM "$srv_pid"
wait "$srv_pid" || { echo "specserved exited dirty on SIGTERM:"; cat "$work/serve2.log"; exit 1; }
srv_pid=""
if grep -q '"core.incremental.steps": [1-9]' "$work/metrics2.json"; then
    echo "-disable-incremental still ran the incremental engine"; exit 1
fi
echo "full-repair pass OK"

echo "churn-smoke OK"
cat "$work/report.json"
